"""Tests for the RS-TriPhoton analysis application."""

import pytest

from repro.apps.triphoton import TriPhotonProcessor
from repro.dag.partition import build_analysis_graph
from repro.hep.datasets import TRIPHOTON_MA, TRIPHOTON_MX, write_dataset
from repro.hep.nanoevents import NanoEventsFactory
from repro.hep.processor import iterative_runner


@pytest.fixture(scope="module")
def chunks(tmp_path_factory):
    directory = tmp_path_factory.mktemp("3gdata")
    paths = write_dataset(str(directory), "triphoton", n_files=3,
                          events_per_file=3000, seed=17,
                          basket_size=500, signal_fraction=0.10)
    return NanoEventsFactory.from_root(paths, chunks_per_file=3,
                                       metadata={"dataset": "3g-test"})


@pytest.fixture(scope="module")
def result(chunks):
    return iterative_runner(TriPhotonProcessor(), chunks)


class TestTriPhotonPhysics:
    def test_cutflow_sane(self, result):
        cutflow = result["cutflow"]
        assert cutflow["events"] == 9_000
        assert cutflow["events_3g"] > 0
        assert cutflow["triples"] >= cutflow["events_3g"]

    def test_x_resonance_found(self, result):
        assert "x_peak_gev" in result
        assert abs(result["x_peak_gev"] - TRIPHOTON_MX) < 50.0

    def test_a_resonance_in_diphoton_mass(self, result):
        hist = result["diphoton_mass"]
        values = hist.values()
        centers = hist.axes[0].centers
        near_ma = values[abs(centers - TRIPHOTON_MA) < 25].sum()
        sideband = values[(centers > 300) & (centers < 350)].sum()
        assert near_ma > 2 * sideband

    def test_mass_plane_clusters_at_signal_point(self, result):
        import numpy as np

        plane = result["mass_plane"]
        values = plane.values()
        m3_centers = plane.axes[0].centers
        m2_centers = plane.axes[1].centers
        # the hottest bin of the plane is the signal point (m_X, m_a)
        i, j = np.unravel_index(np.argmax(values), values.shape)
        assert abs(m3_centers[i] - TRIPHOTON_MX) < 50
        assert abs(m2_centers[j] - TRIPHOTON_MA) < 25
        # and the signal window holds far more than a same-size window
        # in the combinatoric continuum at high mass
        signal_region = values[
            (abs(m3_centers - TRIPHOTON_MX) < 100)[:, None]
            & (abs(m2_centers - TRIPHOTON_MA) < 50)[None, :]].sum()
        control_region = values[
            (abs(m3_centers - 600.0) < 100)[:, None]
            & (abs(m2_centers - 400.0) < 50)[None, :]].sum()
        assert signal_region > 5 * max(control_region, 1.0)

    def test_graph_execution_matches(self, chunks, result):
        graph = build_analysis_graph(TriPhotonProcessor(), list(chunks),
                                     reduction_arity=3)
        (value,) = graph.execute().values()
        assert value["triphoton_mass"] == result["triphoton_mass"]

    def test_flat_vs_tree_reduction_equal(self, chunks):
        flat = build_analysis_graph(TriPhotonProcessor(), list(chunks),
                                    reduction_arity=None).execute()
        tree = build_analysis_graph(TriPhotonProcessor(), list(chunks),
                                    reduction_arity=2).execute()
        (flat_val,) = flat.values()
        (tree_val,) = tree.values()
        assert flat_val["mass_plane"] == tree_val["mass_plane"]
