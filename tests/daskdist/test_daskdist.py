"""Tests for the Dask.Distributed baseline model."""

import pytest

from repro.core.config import SchedulerConfig
from repro.core.files import FileKind, SimFile
from repro.core.spec import SimTask, SimWorkflow
from repro.daskdist import DASK_DISTRIBUTED_CONFIG, DaskDistributedScheduler
from repro.sim.cluster import NodeSpec
from repro.sim.storage import GB, MB

from tests.core.conftest import Env, make_env, map_reduce_workflow

FAST_DASK = SchedulerConfig(
    dispatch_overhead=0.003, collect_overhead=0.001,
    function_call_overhead=0.001, library_startup=0.3,
    import_cost=0.1)


def run_dask(env, workflow, config=FAST_DASK):
    scheduler = DaskDistributedScheduler(
        env.sim, env.cluster, env.storage, workflow,
        config=config, trace=env.trace)
    return scheduler.run(limit=1e6), scheduler


class TestFeasibility:
    def test_small_run_completes(self):
        # per-core workers: 8 single-core processes
        env = make_env(n_workers=8, spec=NodeSpec(cores=1, disk=9 * GB))
        wf = map_reduce_workflow(n_proc=16)
        result, _ = run_dask(env, wf)
        assert result.completed
        assert result.tasks_done == 17

    def test_too_many_workers_crashes(self):
        env = Env(n_workers=0)
        env.cluster.provision(
            DaskDistributedScheduler.max_stable_workers + 10,
            NodeSpec(cores=1, disk=9 * GB))
        wf = map_reduce_workflow(n_proc=4)
        result, _ = run_dask(env, wf)
        assert not result.completed
        assert "crash" in result.error
        assert result.makespan == float("inf")

    def test_too_much_intermediate_data_crashes(self):
        env = make_env(n_workers=4, spec=NodeSpec(cores=1))
        files = [SimFile("in", MB, FileKind.INPUT),
                 SimFile("huge", 400 * GB, FileKind.OUTPUT)]
        tasks = [SimTask(id="t", compute=1.0, inputs=("in",),
                         outputs=("huge",))]
        wf = SimWorkflow(tasks, files)
        result, _ = run_dask(env, wf)
        assert not result.completed
        assert "spill" in result.error

    def test_feasible_returns_none_inside_envelope(self):
        env = make_env(n_workers=2, spec=NodeSpec(cores=1))
        wf = map_reduce_workflow(n_proc=2)
        scheduler = DaskDistributedScheduler(
            env.sim, env.cluster, env.storage, wf, trace=env.trace)
        assert scheduler.feasible() is None


class TestCostProfile:
    def test_default_config_heavier_scheduler_than_taskvine(self):
        from repro.core.config import SchedulerConfig as TVConfig
        taskvine = TVConfig()
        dask = DASK_DISTRIBUTED_CONFIG
        assert dask.dispatch_overhead > taskvine.dispatch_overhead
        assert dask.library_startup > 0

    def test_per_core_startup_multiplies(self):
        """12 single-core workers pay 12 startups; one 12-core TaskVine
        worker pays one."""
        startup_heavy = SchedulerConfig(
            dispatch_overhead=0.0001, collect_overhead=0.0001,
            function_call_overhead=0.001, library_startup=5.0,
            import_cost=0.0)

        # Dask-style: 4 single-core workers
        dask_env = make_env(n_workers=4, spec=NodeSpec(cores=1))
        wf1 = map_reduce_workflow(n_proc=4, compute=0.1, chunk=MB)
        dask_result, _ = run_dask(dask_env, wf1, config=startup_heavy)

        # TaskVine-style: 1 four-core worker
        from repro.core.manager import TaskVineManager
        tv_env = make_env(n_workers=1, spec=NodeSpec(cores=4))
        wf2 = map_reduce_workflow(n_proc=4, compute=0.1, chunk=MB)
        tv = TaskVineManager(tv_env.sim, tv_env.cluster, tv_env.storage,
                             wf2, config=startup_heavy,
                             trace=tv_env.trace)
        tv_result = tv.run(limit=1e6)

        assert dask_result.completed and tv_result.completed
        # both pay the startup, but dask's startups are all on the
        # critical path of separate processes; total CPU burned is 4x.
        dask_busy = sum(r.exec_time for r in dask_env.trace.tasks)
        tv_busy = sum(r.exec_time for r in tv_env.trace.tasks)
        assert tv_busy <= dask_busy
