"""The crash/restore acceptance gate.

A seeded 4-tenant campaign is SIGKILLed (``os._exit(137)`` from the
serve CLI's ``--exit-after-tasks``, no cleanup of any kind) at three
distinct points -- early, mid, late -- and restored from the last
completed checkpoint.  Each restored run must converge to the same
final per-tenant summaries as the uninterrupted reference: task
counts, sorted committed output names (declared *and*
runtime-discovered), and bin-identical pseudo-histograms.  Committed
work must never re-execute: the restored epoch's transaction log may
not contain a TASK_DONE for any task in the checkpoint.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.facility import Tenant
from repro.obs import events as ev
from repro.serve import FacilityService, restore_service

from .conftest import drive, make_env, small_workflow

SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")

CAMPAIGN = ["--tenants", "4", "--submissions", "2", "--workers", "2",
            "--scale", "0.05", "--seed", "11", "--dynamic-every", "3"]
#: crash points bracketing the checkpoint cadence: the probe run's
#: checkpoints complete at commits ~34/68/102/136/168 of 184
CRASH_POINTS = (40, 110, 170)
TOTAL_TASKS = 184


def _serve(tmp, *argv):
    env = dict(os.environ, PYTHONPATH=SRC)
    return subprocess.run(
        [sys.executable, "-m", "repro.serve", *argv],
        cwd=tmp, env=env, capture_output=True, text=True, timeout=120)


@pytest.fixture(scope="module")
def campaign(tmp_path_factory):
    """Reference run + three crashed runs + their restores."""
    tmp = str(tmp_path_factory.mktemp("crash-restore"))

    proc = _serve(tmp, "run", *CAMPAIGN, "--txlog", "ref.jsonl",
                  "--json")
    assert proc.returncode == 0, proc.stderr
    ref = json.loads(proc.stdout)

    restored = {}
    for point in CRASH_POINTS:
        proc = _serve(tmp, "run", *CAMPAIGN,
                      "--txlog", f"crash{point}.jsonl",
                      "--checkpoint", f"crash{point}.ckpt",
                      "--checkpoint-every", "10",
                      "--exit-after-tasks", str(point), "--json")
        assert proc.returncode == 137, (
            f"crash@{point} exited {proc.returncode}: {proc.stderr}")
        proc = _serve(tmp, "restore",
                      "--checkpoint", f"crash{point}.ckpt",
                      "--txlog", f"epoch2-{point}.jsonl", "--json")
        assert proc.returncode == 0, (
            f"restore@{point} failed: {proc.stderr}")
        restored[point] = json.loads(proc.stdout)
    return tmp, ref, restored


def _records(path):
    with open(path) as fh:
        return [json.loads(line) for line in fh if line.strip()]


class TestCrashRestoreEquivalence:
    @pytest.mark.parametrize("point", CRASH_POINTS)
    def test_summaries_identical_to_uninterrupted(self, campaign,
                                                  point):
        _tmp, ref, restored = campaign
        assert restored[point]["summaries"] == ref["summaries"]

    @pytest.mark.parametrize("point", CRASH_POINTS)
    def test_histograms_bin_identical(self, campaign, point):
        _tmp, ref, restored = campaign
        for tenant, row in ref["summaries"].items():
            other = restored[point]["summaries"][tenant]
            assert other["histogram"] == row["histogram"], tenant
            assert len(row["histogram"]) == 16

    @pytest.mark.parametrize("point", CRASH_POINTS)
    def test_discovered_outputs_survive_restore(self, campaign, point):
        """Runtime-discovered files appear in both runs' committed
        output sets (``--dynamic-every 3`` decorates every 3rd task)."""
        _tmp, ref, restored = campaign
        for tenant, row in ref["summaries"].items():
            extras = [n for n in row["outputs"]
                      if n.endswith(".extra.root")]
            assert extras, f"{tenant} has no discovered outputs"
            other = restored[point]["summaries"][tenant]
            assert [n for n in other["outputs"]
                    if n.endswith(".extra.root")] == extras

    @pytest.mark.parametrize("point", CRASH_POINTS)
    def test_zero_reexecution_of_checkpointed_work(self, campaign,
                                                   point):
        tmp, _ref, _restored = campaign
        done = set(json.load(
            open(os.path.join(tmp, f"crash{point}.ckpt")))["done"])
        epoch2 = _records(os.path.join(tmp, f"epoch2-{point}.jsonl"))
        redone = {r["task"] for r in epoch2
                  if r.get("type") == ev.TASK_DONE} & done
        assert redone == set()

    @pytest.mark.parametrize("point", CRASH_POINTS)
    def test_restored_epoch_log_chain(self, campaign, point):
        tmp, _ref, _restored = campaign
        epoch2 = _records(os.path.join(tmp, f"epoch2-{point}.jsonl"))
        header = epoch2[0]
        assert header["type"] == ev.RUN
        assert header["epoch"] == 2
        stamps = [r for r in epoch2 if r.get("type") == ev.RESTORE]
        assert len(stamps) == 1
        ckpt = json.load(
            open(os.path.join(tmp, f"crash{point}.ckpt")))
        assert stamps[0]["tasks_committed"] == len(ckpt["done"])
        footer = epoch2[-1]
        assert footer["type"] == ev.RUN_END
        assert footer["completed"] is True

    @pytest.mark.parametrize("point", CRASH_POINTS)
    def test_work_split_adds_up(self, campaign, point):
        """checkpointed + re-run == the whole campaign, every task
        committed exactly once across the epoch chain."""
        tmp, _ref, _restored = campaign
        ckpt = json.load(
            open(os.path.join(tmp, f"crash{point}.ckpt")))
        epoch2 = _records(os.path.join(tmp, f"epoch2-{point}.jsonl"))
        rerun = {r["task"] for r in epoch2
                 if r.get("type") == ev.TASK_DONE}
        assert len(ckpt["done"]) + len(rerun) == TOTAL_TASKS

    def test_reference_run_has_dynamic_work(self, campaign):
        """Guard the gate's premise: the campaign actually exercises
        runtime-discovered outputs (``--dynamic-every 3``)."""
        _tmp, ref, _restored = campaign
        extras = sum(
            1 for row in ref["summaries"].values()
            for n in row["outputs"] if n.endswith(".extra.root"))
        assert extras >= len(ref["summaries"])

    def test_crash_points_bracket_distinct_checkpoints(self, campaign):
        """The three kill points must exercise genuinely different
        amounts of restored state, or the gate tests one scenario
        three times."""
        tmp, _ref, _restored = campaign
        sizes = [len(json.load(
            open(os.path.join(tmp, f"crash{p}.ckpt")))["done"])
            for p in CRASH_POINTS]
        assert len(set(sizes)) == len(CRASH_POINTS), sizes


class TestRestoredFutures:
    def test_dynamic_output_futures_resolve_in_restore_path(
            self, tmp_path):
        """A restored service resolves futures for already-committed
        discovered outputs immediately (``restored: True``) and still
        resolves the ones whose producing tasks only commit after the
        restore -- the client never tells the difference."""
        txlog = tmp_path / "e1.jsonl"
        ckpt = tmp_path / "e1.ckpt"

        async def epoch1():
            import asyncio
            service = FacilityService(make_env(), [Tenant("a")],
                                      txlog_path=str(txlog))
            await service.start()
            first = await service.submit(
                "a", small_workflow(dynamic=(0, 2)))
            await first
            second = await service.submit(
                "a", small_workflow(dynamic=(0,)))
            await second.decision()
            for _ in range(2):
                await asyncio.sleep(0)
            await service.checkpoint(str(ckpt))
            # epoch 1 "dies" here: no drain, no txlog close

        drive(epoch1())

        async def epoch2():
            service = await restore_service(
                str(ckpt), make_env(), [Tenant("a")],
                txlog_path=str(tmp_path / "e2.jsonl"))
            # committed before the crash: resolved from the sidecar
            done_fut = service.futures["a.0"]
            assert done_fut.done()
            assert done_fut.result()["restored"] is True
            extra = done_fut.output("extra-0.root")
            assert extra.done() and extra.discovered
            assert extra.result()["restored"] is True
            # in flight at the crash: resolves as epoch 2 commits it
            pending = service.futures["a.1"]
            info = await pending.output("extra-0.root")
            assert info["file"] == "extra-0.root"
            summary = await pending
            await service.drain()
            return summary

        summary = drive(epoch2())
        assert summary["submission"] == "a.1"
