"""Service lifecycle: pumping, idling, checkpoint barrier, drain."""

import json
import math

import pytest

from repro.facility import Tenant
from repro.obs import events as ev
from repro.obs.txlog import read_records
from repro.serve import FacilityService, ServeClient, ServiceError

from .conftest import drive, make_env, small_workflow


class TestLifecycle:
    def test_submit_before_start_raises(self):
        async def body():
            service = FacilityService(make_env(), [Tenant("a")])
            with pytest.raises(ServiceError):
                await service.submit("a", small_workflow())

        drive(body())

    def test_submit_while_draining_raises(self):
        async def body():
            service = FacilityService(make_env(), [Tenant("a")])
            await service.start()
            service._stopping = True
            with pytest.raises(ServiceError):
                await service.submit("a", small_workflow())
            await service.drain()

        drive(body())

    def test_drain_with_no_submissions_completes(self):
        async def body():
            service = FacilityService(make_env(), [Tenant("a")])
            await service.start()
            result = await service.drain()
            assert result.completed
            assert service.result is result

        drive(body())

    def test_start_is_idempotent(self):
        async def body():
            service = FacilityService(make_env(), [Tenant("a")])
            await service.start()
            await service.start()
            await service.drain()

        drive(body())

    def test_progress_keys(self):
        async def body():
            service = FacilityService(make_env(), [Tenant("a")])
            await service.start()
            fut = await service.submit("a", small_workflow())
            await fut
            progress = service.progress()
            for key in ("t", "epoch", "submissions", "tasks_committed",
                        "checkpoints", "draining", "finished"):
                assert key in progress
            assert progress["epoch"] == 1
            assert progress["tasks_committed"] == 4
            await service.drain()

        drive(body())


class TestClockDiscipline:
    def test_drain_stops_at_completion_not_heap_exhaustion(self):
        """Regression: the heap always holds far-future background
        events (per-worker preemption clocks).  Draining must stop at
        the completion boundary, not fast-forward the clock through
        them -- that killed every worker and aborted the run."""
        async def body():
            service = FacilityService(make_env(), [Tenant("a")])
            await service.start()
            await (await service.submit("a", small_workflow()))
            result = await service.drain()
            assert result.completed
            assert result.run.error is None
            # preemption horizon is ~1/3e-6 s; completion is seconds
            assert service.sim.now < 1000.0

        drive(body())

    def test_idle_service_does_not_advance_clock(self):
        async def body():
            service = FacilityService(make_env(), [Tenant("a")])
            await service.start()
            fut = await service.submit("a", small_workflow())
            await fut
            t_done = service.sim.now
            # idle: nothing submitted, pump parked
            for _ in range(50):
                import asyncio
                await asyncio.sleep(0)
            assert service.sim.now == t_done
            await service.drain()

        drive(body())


class TestCheckpointBarrier:
    def test_checkpoint_requires_txlog(self):
        async def body():
            service = FacilityService(make_env(), [Tenant("a")])
            await service.start()
            with pytest.raises(ServiceError):
                await service.checkpoint("nowhere.ckpt")
            await service.drain()

        drive(body())

    def test_checkpoint_stamps_record_and_writes_sidecar(self, tmp_path):
        txlog = tmp_path / "serve.jsonl"
        sidecar = tmp_path / "serve.ckpt"

        async def body():
            service = FacilityService(make_env(), [Tenant("a")],
                                      txlog_path=str(txlog))
            await service.start()
            await (await service.submit("a", small_workflow()))
            ckpt = await service.checkpoint(str(sidecar))
            assert service.checkpoints == 1
            assert service.last_checkpoint["path"] == str(sidecar)
            await service.drain()
            return ckpt

        ckpt = drive(body())
        assert sidecar.exists()
        on_disk = json.loads(sidecar.read_text())
        assert on_disk == ckpt
        assert sorted(ckpt["done"]) == [
            "a.0/accum", "a.0/proc-0", "a.0/proc-1", "a.0/proc-2"]
        stamps = [r for r in read_records(str(txlog))
                  if r["type"] == ev.CHECKPOINT]
        assert len(stamps) == 1
        assert stamps[0]["tasks_committed"] == 4

    def test_quiescent_checkpoint_commits_inflight_work(self, tmp_path):
        """The barrier drains running tasks: everything dispatched
        before the checkpoint is either committed in the sidecar or
        failed -- never silently in flight."""
        txlog = tmp_path / "serve.jsonl"
        sidecar = tmp_path / "serve.ckpt"

        async def body():
            service = FacilityService(make_env(), [Tenant("a")],
                                      txlog_path=str(txlog),
                                      slice_events=8)
            await service.start()
            fut = await service.submit("a", small_workflow())
            # let a few slices run, then checkpoint mid-campaign
            import asyncio
            for _ in range(6):
                await asyncio.sleep(0)
            ckpt = await service.checkpoint(str(sidecar))
            assert service.manager.inflight == 0
            await fut
            await service.drain()
            return ckpt

        ckpt = drive(body())
        committed = set(ckpt["done"])
        running_at_ckpt = set()  # nothing may be mid-pipeline
        assert committed <= {"a.0/proc-0", "a.0/proc-1", "a.0/proc-2",
                             "a.0/accum"}
        assert running_at_ckpt == set()


class TestServeClient:
    def test_client_binds_default_tenant(self):
        async def body():
            service = FacilityService(make_env(),
                                      [Tenant("a"), Tenant("b")])
            await service.start()
            client = ServeClient(service, "b")
            fut = await client.submit(small_workflow())
            summary = await fut
            assert summary["tenant"] == "b"
            assert not math.isnan(summary["turnaround"])
            await service.drain()

        drive(body())
