"""Exit codes and --json payloads of ``python -m repro.serve``."""

import json
import os
import subprocess
import sys

import pytest

from repro.serve.checkpoint import (CheckpointError, load_checkpoint,
                                    workflow_from_dict,
                                    workflow_to_dict)

from .conftest import small_workflow

SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


def _serve(tmp, *argv):
    env = dict(os.environ, PYTHONPATH=SRC)
    return subprocess.run(
        [sys.executable, "-m", "repro.serve", *argv],
        cwd=str(tmp), env=env, capture_output=True, text=True,
        timeout=120)


SMALL = ["--tenants", "2", "--submissions", "1", "--workers", "2",
         "--scale", "0.02", "--seed", "7"]


class TestRunCommand:
    def test_completed_run_exits_zero_with_json(self, tmp_path):
        proc = _serve(tmp_path, "run", *SMALL,
                      "--txlog", "run.jsonl", "--json")
        assert proc.returncode == 0, proc.stderr
        payload = json.loads(proc.stdout)
        for key in ("report", "summaries", "progress", "txlog",
                    "epoch"):
            assert key in payload
        assert payload["epoch"] == 1
        assert (tmp_path / "run.jsonl").exists()

    def test_unknown_workload_exits_two(self, tmp_path):
        proc = _serve(tmp_path, "run", "--workload", "NoSuchDV",
                      "--txlog", "run.jsonl")
        assert proc.returncode == 2
        assert "workload" in proc.stderr.lower()

    def test_exit_after_tasks_dies_with_137(self, tmp_path):
        proc = _serve(tmp_path, "run", *SMALL,
                      "--txlog", "run.jsonl",
                      "--checkpoint", "run.ckpt",
                      "--checkpoint-every", "4",
                      "--exit-after-tasks", "10")
        assert proc.returncode == 137


class TestRestoreCommand:
    def test_missing_checkpoint_exits_two(self, tmp_path):
        proc = _serve(tmp_path, "restore",
                      "--checkpoint", "nowhere.ckpt",
                      "--txlog", "e2.jsonl")
        assert proc.returncode == 2
        assert "checkpoint" in proc.stderr.lower()

    def test_corrupt_checkpoint_exits_two(self, tmp_path):
        (tmp_path / "bad.ckpt").write_text("{not json")
        proc = _serve(tmp_path, "restore",
                      "--checkpoint", "bad.ckpt",
                      "--txlog", "e2.jsonl")
        assert proc.returncode == 2


class TestCheckpointCodec:
    def test_workflow_roundtrip(self):
        wf = small_workflow(dynamic=(1,))
        back = workflow_from_dict(workflow_to_dict(wf))
        assert sorted(back.tasks) == sorted(wf.tasks)
        for tid, task in wf.tasks.items():
            other = back.tasks[tid]
            assert other.inputs == task.inputs
            assert other.outputs == task.outputs
            assert other.dynamic_outputs == task.dynamic_outputs
            assert other.compute == task.compute
        assert {f.name: f.size for f in back.files.values()} == \
               {f.name: f.size for f in wf.files.values()}

    def test_load_rejects_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError):
            load_checkpoint(str(tmp_path / "absent.ckpt"))

    def test_load_rejects_bad_json(self, tmp_path):
        path = tmp_path / "bad.ckpt"
        path.write_text("]")
        with pytest.raises(CheckpointError):
            load_checkpoint(str(path))

    def test_load_rejects_future_version(self, tmp_path):
        path = tmp_path / "future.ckpt"
        path.write_text(json.dumps({
            "version": 999, "t": 0, "epoch": 1,
            "submissions": [], "done": {}, "cache": {}}))
        with pytest.raises(CheckpointError) as err:
            load_checkpoint(str(path))
        assert "version" in str(err.value)

    def test_load_rejects_missing_keys(self, tmp_path):
        path = tmp_path / "partial.ckpt"
        path.write_text(json.dumps({"version": 1, "t": 0.0}))
        with pytest.raises(CheckpointError) as err:
            load_checkpoint(str(path))
        assert "missing" in str(err.value)

    def test_malformed_workflow_journal(self):
        with pytest.raises(CheckpointError):
            workflow_from_dict({"tasks": [{"id": "x"}], "files": []})
