"""Property: streaming analysis of a *serve* log is batch-exact.

At EVERY prefix point of a multi-tenant serve transaction log --
interleaved arrivals, checkpoint stamps, runtime-discovered outputs
-- an incrementally-fed :class:`LiveAnalyzer` snapshot must be
byte-for-byte identical to a fresh batch :func:`report_data` over the
same prefix.  The serve dashboards read the incremental path while CI
reads the batch path; this is the property that makes them agree
mid-campaign, not just at the end.
"""

import asyncio
import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bench.runners import build_environment
from repro.bench.serve import serve_campaign
from repro.obs.analyze import report_data
from repro.obs.live import LiveAnalyzer
from repro.obs.txlog import read_records
from repro.serve import FacilityService
from repro.serve.client import run_campaign


@pytest.fixture(scope="module")
def serve_records(tmp_path_factory):
    """One serve campaign's transaction log, poisson arrivals so
    tenant lifecycles genuinely interleave."""
    tmp = tmp_path_factory.mktemp("stream")
    txlog = str(tmp / "serve.jsonl")

    async def drive():
        tenants, arrivals = serve_campaign(
            n_tenants=3, per_tenant=2, scale=0.02,
            arrival="poisson:0.05", seed=5, dynamic_every=3)
        service = FacilityService(build_environment(2, seed=5),
                                  tenants, txlog_path=txlog,
                                  checkpoint_path=str(tmp / "s.ckpt"),
                                  checkpoint_every=20)
        await service.start()
        await run_campaign(service, arrivals, wait=False)
        result = await service.drain()
        assert result.completed
        assert service.checkpoints >= 1

    asyncio.run(drive())
    records = list(read_records(txlog))
    assert len(records) > 100
    return records


def _bytes(data):
    return json.dumps(data, indent=2, sort_keys=True, default=str)


COMMON = dict(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])


@settings(**COMMON)
@given(fraction=st.floats(0.0, 1.0))
def test_snapshot_matches_batch_at_any_point(serve_records, fraction):
    split = int(fraction * len(serve_records))
    live = LiveAnalyzer()
    live.feed(serve_records[:split])
    assert _bytes(live.snapshot()) == \
        _bytes(report_data(serve_records[:split]))


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(cuts=st.lists(st.floats(0.0, 1.0), min_size=1, max_size=4))
def test_chunked_feeding_matches_batch_at_every_cut(serve_records,
                                                    cuts):
    """The same analyzer, fed in arbitrary chunks, agrees with a
    fresh batch analysis at *each* cut -- reading mid-stream never
    perturbs the fold state."""
    live = LiveAnalyzer()
    last = 0
    for fraction in sorted(cuts):
        nxt = int(fraction * len(serve_records))
        live.feed(serve_records[last:nxt])
        assert _bytes(live.snapshot()) == \
            _bytes(report_data(serve_records[:nxt]))
        last = nxt
    live.feed(serve_records[last:])
    assert live.complete
    assert _bytes(live.snapshot()) == _bytes(report_data(serve_records))
