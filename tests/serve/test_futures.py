"""Futures lifecycle: admission, per-output resolution, rejection."""

import pytest

from repro.facility import Tenant, TenantQuota
from repro.serve import AdmissionRejected, FacilityService

from .conftest import drive, make_env, small_workflow


class TestAdmittedFlow:
    def test_submission_future_resolves_with_summary(self):
        async def body():
            service = FacilityService(make_env(), [Tenant("a")])
            await service.start()
            fut = await service.submit("a", small_workflow(), tag="x")
            decision = await fut.decision()
            assert decision.submission_id == "a.0"
            assert fut.state in ("running", "done")
            summary = await fut
            assert fut.state == "done"
            assert summary["submission"] == "a.0"
            assert summary["tenant"] == "a"
            assert summary["tasks"] == 4
            await service.drain()
            return summary

        drive(body())

    def test_output_future_resolves_on_commit(self):
        async def body():
            service = FacilityService(make_env(), [Tenant("a")])
            await service.start()
            fut = await service.submit("a", small_workflow())
            result = fut.output("result")
            partial = fut.output("partial-0")
            info = await result
            assert info["file"] == "result"
            assert info["task"] == "a.0/accum"
            assert (await partial)["file"] == "partial-0"
            await service.drain()

        drive(body())

    def test_discovered_output_future_resolves(self):
        """A future for a file the DAG never declared resolves once
        the producing task announces it at commit time."""
        async def body():
            service = FacilityService(make_env(), [Tenant("a")])
            await service.start()
            wf = small_workflow(dynamic=(0, 2))
            fut = await service.submit("a", wf)
            extra = fut.output("extra-0.root")
            info = await extra
            assert info["file"] == "extra-0.root"
            assert extra.discovered
            await fut
            assert sorted(fut.discovered) == ["extra-0.root",
                                              "extra-2.root"]
            await service.drain()

        drive(body())

    def test_outputs_listing_after_completion(self):
        async def body():
            service = FacilityService(make_env(), [Tenant("a")])
            await service.start()
            fut = await service.submit("a", small_workflow(n_proc=2))
            await fut
            names = {f.name for f in fut.outputs()}
            assert {"partial-0", "partial-1", "result"} <= names
            await service.drain()

        drive(body())


class TestRejection:
    def test_unknown_tenant_raises_admission_rejected(self):
        async def body():
            service = FacilityService(make_env(), [Tenant("a")])
            await service.start()
            fut = await service.submit("mallory", small_workflow())
            with pytest.raises(AdmissionRejected) as err:
                await fut.decision()
            assert "unknown" in err.value.reason
            assert fut.state == "rejected"
            # output futures fail with the same typed error
            with pytest.raises(AdmissionRejected):
                await fut.output("result")
            await service.drain()

        drive(body())

    def test_oversized_submission_rejected(self):
        async def body():
            quota = TenantQuota(inflight_tasks=2)
            service = FacilityService(make_env(),
                                      [Tenant("a", quota=quota)])
            await service.start()
            fut = await service.submit("a", small_workflow(n_proc=4))
            with pytest.raises(AdmissionRejected) as err:
                await fut
            assert "quota" in err.value.reason
            await service.drain()

        drive(body())


class TestQueuedFlow:
    def test_queued_future_carries_position_then_runs(self):
        async def body():
            quota = TenantQuota(inflight_tasks=4)
            service = FacilityService(make_env(),
                                      [Tenant("a", quota=quota)])
            await service.start()
            first = await service.submit("a", small_workflow())
            second = await service.submit("a", small_workflow())
            d2 = await second.decision()
            assert second.state in ("queued", "running", "done")
            assert d2.position == 1
            s1 = await first
            s2 = await second
            assert s1["submission"] == "a.0"
            assert s2["submission"] == "a.1"
            # the backlog drain flipped the queued future forward
            assert second.state == "done"
            assert second.position is None
            await service.drain()

        drive(body())
