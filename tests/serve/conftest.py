"""Serve-test harness: tiny workflows and async drivers."""

import asyncio

import pytest

from repro.bench.runners import build_environment
from repro.core.files import FileKind, SimFile
from repro.core.spec import SimTask, SimWorkflow


def small_workflow(n_proc=3, chunk=50e6, partial=5e6, compute=1.0,
                   dynamic=()) -> SimWorkflow:
    """n_proc processing tasks feeding one accumulation.

    ``dynamic`` lists proc indices that also commit one
    runtime-discovered ``extra-<i>.root`` output.
    """
    files, tasks, partials = [], [], []
    for i in range(n_proc):
        files.append(SimFile(f"chunk-{i}", chunk, FileKind.INPUT))
        files.append(SimFile(f"partial-{i}", partial,
                             FileKind.INTERMEDIATE))
        dyn = ((f"extra-{i}.root", 1e6),) if i in dynamic else ()
        tasks.append(SimTask(id=f"proc-{i}", compute=compute,
                             inputs=(f"chunk-{i}",),
                             outputs=(f"partial-{i}",),
                             category="proc", function="process",
                             dynamic_outputs=dyn))
        partials.append(f"partial-{i}")
    files.append(SimFile("result", partial, FileKind.OUTPUT))
    tasks.append(SimTask(id="accum", compute=0.5,
                         inputs=tuple(partials), outputs=("result",),
                         category="accum", function="accumulate"))
    return SimWorkflow(tasks, files)


@pytest.fixture
def env():
    return build_environment(2, seed=3)


def make_env(n_workers=2, seed=3):
    return build_environment(n_workers, seed=seed)


def drive(coro):
    """Run one async test body on a fresh loop."""
    return asyncio.run(coro)
