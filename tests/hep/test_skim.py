"""Tests for the skimming layer."""

import numpy as np
import pytest

from repro.hep.datasets import write_dataset
from repro.hep.nanoevents import NanoEventsFactory
from repro.hep.skim import SkimStats, skim_chunk, skim_dataset


@pytest.fixture(scope="module")
def chunks(tmp_path_factory):
    directory = tmp_path_factory.mktemp("skim-in")
    paths = write_dataset(str(directory), "dv3", n_files=2,
                          events_per_file=1_000, seed=5,
                          basket_size=250)
    return NanoEventsFactory.from_root(paths, chunks_per_file=2)


def high_met(events):
    return events.MET.pt > 50.0


class TestSkimChunk:
    def test_selection_applied(self, chunks, tmp_path):
        out = str(tmp_path / "out")
        stats = skim_chunk(chunks[0], high_met, out)
        assert 0 < stats.events_out < stats.events_in
        skimmed = NanoEventsFactory.from_root(out + ".npz")[0].load()
        assert skimmed.nevents == stats.events_out
        assert (skimmed.MET.pt > 50.0).all()

    def test_jagged_branches_survive(self, chunks, tmp_path):
        out = str(tmp_path / "out")
        skim_chunk(chunks[0], high_met, out)
        skimmed = NanoEventsFactory.from_root(out + ".npz")[0].load()
        assert "Jet" in skimmed.collections
        # jets of the kept events match the original
        original = chunks[0].load()
        keep = np.nonzero(high_met(original))[0]
        assert (skimmed.Jet.pt.tolist()
                == original.Jet.pt.select_events(keep).tolist())

    def test_column_pruning(self, chunks, tmp_path):
        out = str(tmp_path / "out")
        skim_chunk(chunks[0], high_met, out,
                   branches=["MET_pt", "Jet_pt"])
        from repro.hep.root import ROOTFile

        f = ROOTFile(out + ".npz")
        assert "MET_phi" not in f.branch_names
        assert "Jet_eta" not in f.branch_names
        assert "Jet_pt" in f.branch_names

    def test_empty_selection_writes_nothing(self, chunks, tmp_path):
        out = str(tmp_path / "none")
        stats = skim_chunk(chunks[0], lambda e: e.MET.pt > 1e12, out)
        assert stats.events_out == 0
        import os

        assert not os.path.exists(out + ".npz")

    def test_bad_selection_shape_rejected(self, chunks, tmp_path):
        with pytest.raises(ValueError, match="shape"):
            skim_chunk(chunks[0], lambda e: np.array([True]),
                       str(tmp_path / "bad"))


class TestSkimDataset:
    def test_all_chunks_processed(self, chunks, tmp_path):
        paths, stats = skim_dataset(chunks, high_met,
                                    str(tmp_path / "skim"))
        assert stats.events_in == sum(c.nevents for c in chunks)
        assert len(paths) >= 1
        assert 0 < stats.efficiency < 1
        assert stats.size_reduction > 0

    def test_skim_then_analyse(self, chunks, tmp_path):
        """A skimmed dataset produces the same selected physics."""
        from repro.apps import DV3Processor
        from repro.hep.processor import iterative_runner

        paths, _ = skim_dataset(chunks, high_met,
                                str(tmp_path / "skim2"))
        skim_chunks = NanoEventsFactory.from_root(paths)
        out = iterative_runner(DV3Processor(), skim_chunks)
        # every event in the skim passes the MET cut, so the MET
        # histogram is empty below 50 GeV
        hist = out["met"]
        centers = hist.axes[0].centers
        assert hist.values()[centers < 50].sum() == 0


class TestSkimStats:
    def test_accumulation(self):
        a = SkimStats(100, 10, 1000, 100)
        b = SkimStats(200, 50, 2000, 400)
        total = sum([a, b])
        assert total.events_in == 300
        assert total.events_out == 60
        assert total.efficiency == pytest.approx(0.2)

    def test_empty_efficiency(self):
        assert SkimStats().efficiency == 0.0
        assert SkimStats().size_reduction == 0.0
