"""Unit tests for four-vector kinematics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hep import kinematics as kin


finite_pt = st.floats(1.0, 1e3)
finite_eta = st.floats(-3.0, 3.0)
finite_phi = st.floats(-np.pi, np.pi)
finite_mass = st.floats(0.0, 100.0)


class TestComponents:
    def test_px_py_pz_basics(self):
        assert kin.px(10.0, 0.0) == pytest.approx(10.0)
        assert kin.py(10.0, np.pi / 2) == pytest.approx(10.0)
        assert kin.pz(10.0, 0.0) == pytest.approx(0.0)

    def test_energy_massless(self):
        # eta=0, m=0: E = pt
        assert kin.energy(50.0, 0.0, 0.0) == pytest.approx(50.0)

    def test_energy_with_mass(self):
        e = kin.energy(3.0, 0.0, 4.0)
        assert e == pytest.approx(5.0)

    @given(finite_pt, finite_eta, finite_mass)
    @settings(max_examples=50, deadline=None)
    def test_energy_at_least_momentum(self, pt, eta, m):
        p = pt * np.cosh(eta)
        assert kin.energy(pt, eta, m) >= p - 1e-9


class TestDeltaPhi:
    def test_wrapping(self):
        assert kin.delta_phi(np.pi - 0.1, -np.pi + 0.1) == pytest.approx(-0.2)
        assert kin.delta_phi(0.1, -0.1) == pytest.approx(0.2)

    @given(finite_phi, finite_phi)
    @settings(max_examples=50, deadline=None)
    def test_range(self, a, b):
        d = kin.delta_phi(a, b)
        assert -np.pi - 1e-12 <= d <= np.pi + 1e-12

    def test_delta_r_pythagorean(self):
        # d_eta = 3, d_phi = 0.0 -> dR = 3
        assert kin.delta_r(3.0, 0.5, 0.0, 0.5) == pytest.approx(3.0)

    def test_delta_r_wraps_phi(self):
        # phi legs on either side of the -pi/pi seam: separation 0.2
        assert kin.delta_r(0.0, np.pi - 0.1, 0.0,
                           -np.pi + 0.1) == pytest.approx(0.2)


class TestInvariantMass:
    def test_back_to_back_massless_pair(self):
        # pt = m/2 each, opposite phi, same eta: mass = m exactly.
        m = kin.invariant_mass_pairs(
            62.5, 0.0, 0.0, 0.0,
            62.5, 0.0, np.pi, 0.0)
        assert m == pytest.approx(125.0)

    def test_collinear_massless_pair_is_zero(self):
        m = kin.invariant_mass_pairs(50.0, 1.0, 0.3, 0.0,
                                     70.0, 1.0, 0.3, 0.0)
        # catastrophic cancellation limits precision to ~sqrt(eps)*E
        assert m == pytest.approx(0.0, abs=1e-3)

    def test_vectorised(self):
        pt = np.array([62.5, 100.0])
        m = kin.invariant_mass_pairs(pt, 0.0, 0.0, 0.0, pt, 0.0, np.pi, 0.0)
        assert m == pytest.approx([125.0, 200.0])

    @given(finite_pt, finite_eta, finite_phi, finite_mass,
           finite_pt, finite_eta, finite_phi, finite_mass)
    @settings(max_examples=60, deadline=None)
    def test_mass_at_least_sum_of_masses(self, pt1, eta1, phi1, m1,
                                         pt2, eta2, phi2, m2):
        m = kin.invariant_mass_pairs(pt1, eta1, phi1, m1,
                                     pt2, eta2, phi2, m2)
        assert m >= (m1 + m2) * (1 - 1e-6) - 1e-6

    def test_symmetric_in_legs(self):
        a = kin.invariant_mass_pairs(30, 1.0, 0.5, 5, 40, -0.5, 2.0, 10)
        b = kin.invariant_mass_pairs(40, -0.5, 2.0, 10, 30, 1.0, 0.5, 5)
        assert a == pytest.approx(b)


class TestTriples:
    def test_triphoton_construction(self):
        """The exact construction from the dataset generator docstring."""
        m_a, m_x = 200.0, 1000.0
        p = m_a / 2.0
        q = (m_x ** 2 - m_a ** 2) / (2.0 * m_a)
        pt = [np.array([p]), np.array([p]), np.array([q])]
        eta = [np.zeros(1)] * 3
        phi = [np.zeros(1), np.full(1, np.pi), np.full(1, np.pi / 2)]
        mass = [np.zeros(1)] * 3
        m3 = kin.invariant_mass_triples(pt, eta, phi, mass)
        assert m3[0] == pytest.approx(m_x)
        # and the photon pair reconstructs m_a
        m2 = kin.invariant_mass_pairs(p, 0, 0, 0, p, 0, np.pi, 0)
        assert m2 == pytest.approx(m_a)


class TestTransverseMass:
    def test_opposite_legs(self):
        mt = kin.transverse_mass(50.0, 0.0, 50.0, np.pi)
        assert mt == pytest.approx(100.0)

    def test_aligned_legs_zero(self):
        assert kin.transverse_mass(50.0, 1.0, 30.0, 1.0) == pytest.approx(0.0)
