"""Tests for event weights and structured cutflows."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hep.cutflow import Cutflow
from repro.hep.processor import accumulate
from repro.hep.weights import Weights


class TestWeights:
    def test_starts_at_unity(self):
        w = Weights(4)
        assert list(w.weight()) == [1, 1, 1, 1]

    def test_product_of_corrections(self):
        w = Weights(3)
        w.add("gen", [2.0, 2.0, 2.0])
        w.add("pu", [0.5, 1.0, 1.5])
        assert list(w.weight()) == [1.0, 2.0, 3.0]

    def test_scalar_broadcast(self):
        w = Weights(3)
        w.add("lumi", 2.0)
        assert list(w.weight()) == [2, 2, 2]

    def test_variations(self):
        w = Weights(2)
        w.add("pu", [1.0, 1.0], up=[1.2, 1.2], down=[0.8, 0.8])
        assert w.variations == ["puDown", "puUp"]
        assert list(w.weight("puUp")) == pytest.approx([1.2, 1.2])
        assert list(w.weight("puDown")) == pytest.approx([0.8, 0.8])

    def test_variation_tracks_later_corrections(self):
        w = Weights(2)
        w.add("pu", [1.0, 1.0], up=[1.5, 1.5])
        w.add("trig", [2.0, 2.0])
        # the puUp weight must include the trigger correction
        assert list(w.weight("puUp")) == pytest.approx([3.0, 3.0])
        assert list(w.weight()) == pytest.approx([2.0, 2.0])

    def test_unknown_variation(self):
        w = Weights(1)
        with pytest.raises(KeyError, match="no variation"):
            w.weight("jesUp")

    def test_non_finite_rejected(self):
        w = Weights(2)
        with pytest.raises(ValueError):
            w.add("bad", [1.0, np.nan])

    def test_negative_events_rejected(self):
        with pytest.raises(ValueError):
            Weights(-1)

    @given(st.lists(st.floats(0.1, 3.0), min_size=1, max_size=5))
    @settings(max_examples=30, deadline=None)
    def test_order_independent_product(self, factors):
        n = 4
        a = Weights(n)
        b = Weights(n)
        for i, f in enumerate(factors):
            a.add(f"c{i}", np.full(n, f))
        for i, f in reversed(list(enumerate(factors))):
            b.add(f"c{i}", np.full(n, f))
        assert np.allclose(a.weight(), b.weight())


class TestCutflow:
    def test_fill_with_booleans(self):
        flow = Cutflow()
        mask = np.array([True, True, False, True])
        flow.fill("trigger", mask)
        assert flow.count("trigger") == 3

    def test_fill_with_weights(self):
        flow = Cutflow()
        flow.fill("sel", np.array([True, False]),
                  weights=np.array([2.0, 5.0]))
        assert flow.count("sel") == 1
        assert flow.weighted("sel") == 2.0

    def test_fill_with_counts(self):
        flow = Cutflow()
        flow.fill("all", 100)
        assert flow.count("all") == 100

    def test_efficiency_vs_first_stage(self):
        flow = Cutflow()
        flow.fill("all", 100)
        flow.fill("sel", 25)
        assert flow.efficiency("sel") == 0.25
        assert flow.efficiency("sel", relative_to="sel") == 1.0

    def test_stage_order_preserved(self):
        flow = Cutflow()
        for name in ("a", "b", "c"):
            flow.fill(name, 1)
        assert flow.stages == ["a", "b", "c"]

    def test_merge_adds_counts(self):
        a = Cutflow()
        a.fill("all", 10)
        a.fill("sel", 5)
        b = Cutflow()
        b.fill("all", 20)
        b.fill("sel", 3)
        merged = a + b
        assert merged.count("all") == 30
        assert merged.count("sel") == 8
        # operands untouched
        assert a.count("all") == 10

    def test_merge_union_of_stages(self):
        a = Cutflow()
        a.fill("x", 1)
        b = Cutflow()
        b.fill("y", 2)
        merged = a + b
        assert merged.stages == ["x", "y"]

    def test_sum_builtin(self):
        flows = []
        for _ in range(3):
            f = Cutflow()
            f.fill("all", 5)
            flows.append(f)
        assert sum(flows).count("all") == 15

    def test_accumulate_integration(self):
        a = {"cutflow": Cutflow()}
        a["cutflow"].fill("all", 7)
        b = {"cutflow": Cutflow()}
        b["cutflow"].fill("all", 3)
        merged = accumulate([a, b])
        assert merged["cutflow"].count("all") == 10

    def test_equality(self):
        a = Cutflow()
        a.fill("s", 1)
        b = Cutflow()
        b.fill("s", 1)
        assert a == b
        b.fill("s", 1)
        assert a != b

    def test_to_table(self):
        flow = Cutflow()
        flow.fill("all", 100)
        flow.fill("sel", 40)
        table = flow.to_table()
        assert "all" in table and "40" in table and "%" in table

    def test_merge_type_error(self):
        with pytest.raises(TypeError):
            Cutflow() + "nope"

    @given(st.lists(st.integers(0, 50), min_size=1, max_size=6))
    @settings(max_examples=30, deadline=None)
    def test_merge_associative(self, counts):
        def make(c):
            f = Cutflow()
            f.fill("stage", c)
            return f

        flows = [make(c) for c in counts]
        left = flows[0]
        for f in flows[1:]:
            left = left + f
        right = flows[-1]
        for f in reversed(flows[:-1]):
            right = f + right
        assert left == right
