"""Tests for processors and accumulation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hep.hist import Hist
from repro.hep.nanoevents import NanoEventsFactory
from repro.hep.processor import ProcessorABC, accumulate, iterative_runner
from repro.hep.datasets import write_dataset


class CountingProcessor(ProcessorABC):
    """Counts events and histograms MET."""

    def process(self, events):
        h = Hist.new.Reg(20, 0, 200, name="met").Double()
        h.fill(met=events.MET.pt)
        return {"nevents": events.nevents, "met": h,
                "files": {events.metadata.get("dataset", "?")}}

    def postprocess(self, accumulator):
        accumulator["done"] = True
        return accumulator


class TestAccumulate:
    def test_numbers(self):
        assert accumulate([1, 2, 3]) == 6

    def test_dicts_union(self):
        out = accumulate([{"a": 1}, {"b": 2}, {"a": 10}])
        assert out == {"a": 11, "b": 2}

    def test_nested_dicts(self):
        out = accumulate([{"x": {"y": 1}}, {"x": {"y": 2, "z": 3}}])
        assert out == {"x": {"y": 3, "z": 3}}

    def test_hists(self):
        a = Hist.new.Reg(2, 0, 2, name="x").Double().fill(x=[0.5])
        b = Hist.new.Reg(2, 0, 2, name="x").Double().fill(x=[1.5])
        merged = accumulate([a, b])
        assert merged.sum() == 2

    def test_lists_and_sets(self):
        assert accumulate([[1], [2]]) == [1, 2]
        assert accumulate([{1}, {2}]) == {1, 2}

    def test_arrays(self):
        out = accumulate([np.array([1.0, 2.0]), np.array([3.0, 4.0])])
        assert list(out) == [4, 6]

    def test_none_identity(self):
        assert accumulate([None, 5]) == 5
        assert accumulate([5, None]) == 5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            accumulate([])

    def test_type_mismatch_rejected(self):
        with pytest.raises(TypeError):
            accumulate([{"a": 1}, 5])

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError):
            accumulate([object(), object()])

    @given(st.lists(st.integers(-100, 100), min_size=1, max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_order_invariance_for_numbers(self, xs):
        import random
        shuffled = list(xs)
        random.Random(0).shuffle(shuffled)
        assert accumulate(xs) == accumulate(shuffled)


class TestIterativeRunner:
    def test_runs_and_accumulates(self, tmp_path):
        paths = write_dataset(str(tmp_path), "dv3", 2, 300, seed=11)
        chunks = NanoEventsFactory.from_root(
            paths, chunks_per_file=3, metadata={"dataset": "test"})
        out = iterative_runner(CountingProcessor(), chunks)
        assert out["nevents"] == 600
        assert out["met"].sum(flow=True) == 600
        assert out["files"] == {"test"}
        assert out["done"] is True

    def test_empty_chunks_rejected(self):
        with pytest.raises(ValueError):
            iterative_runner(CountingProcessor(), [])

    def test_chunking_invariance(self, tmp_path):
        """The accumulated result must not depend on partitioning."""
        paths = write_dataset(str(tmp_path), "dv3", 2, 200, seed=12)
        coarse = iterative_runner(
            CountingProcessor(),
            NanoEventsFactory.from_root(paths, chunks_per_file=1))
        fine = iterative_runner(
            CountingProcessor(),
            NanoEventsFactory.from_root(paths, chunks_per_file=5))
        assert coarse["nevents"] == fine["nevents"]
        assert coarse["met"] == fine["met"]
