"""Tests for the XRootD WAN federation model."""

import pytest

from repro.hep.xrootd import DEFAULT_WAN, WANProfile, XRootDFederation
from repro.sim.engine import Simulation
from repro.sim.network import Network
from repro.sim.storage import GB, MB
from repro.sim.trace import TraceRecorder


@pytest.fixture
def env():
    sim = Simulation()
    trace = TraceRecorder()
    net = Network(sim, trace, latency=0.0)
    net.add_node(1, capacity=10 * GB)
    net.add_node(2, capacity=10 * GB)
    return sim, net


class TestXRootD:
    def test_read_pays_wan_latency_and_bandwidth(self, env):
        sim, net = env
        profile = WANProfile(round_trip_latency=0.1,
                             per_stream_bw=100 * MB,
                             aggregate_bw=1 * GB)
        fed = XRootDFederation(sim, net, profile)
        done = fed.read(1, 100 * MB)
        sim.run_until_complete(done)
        # 2 RTTs (redirector + open) + 1 s of transfer
        assert sim.now == pytest.approx(1.2, rel=0.05)
        assert fed.bytes_read == 100 * MB
        assert fed.requests == 1

    def test_aggregate_bandwidth_shared(self, env):
        sim, net = env
        profile = WANProfile(round_trip_latency=0.0,
                             per_stream_bw=1 * GB,
                             aggregate_bw=1 * GB)
        fed = XRootDFederation(sim, net, profile)
        events = [fed.read(node, 1 * GB) for node in (1, 2)]
        sim.run_until_complete(sim.all_of(events))
        # 2 GB through a 1 GB/s site uplink
        assert sim.now == pytest.approx(2.0, rel=0.05)

    def test_default_profile_is_wan_like(self):
        assert DEFAULT_WAN.round_trip_latency > 0.01
        assert DEFAULT_WAN.per_stream_bw < 100 * MB

    def test_much_slower_than_local_stream(self, env):
        """The Section III.A rationale, in one comparison."""
        sim, net = env
        fed = XRootDFederation(sim, net)
        done = fed.read(1, 500 * MB)
        sim.run_until_complete(done)
        wan_time = sim.now
        local_time = 500 * MB / (1.2 * GB)  # one VAST stream
        assert wan_time > 10 * local_time
