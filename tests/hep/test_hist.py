"""Unit and property tests for histograms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hep.hist import Hist, IntCategory, Regular, StrCategory, Variable
from repro.hep.jagged import JaggedArray


class TestAxes:
    def test_regular_index(self):
        ax = Regular(10, 0.0, 10.0, name="x")
        idx = ax.index([-1.0, 0.0, 0.5, 9.99, 10.0, 42.0])
        assert list(idx) == [0, 1, 1, 10, 11, 11]

    def test_regular_nan_goes_to_overflow(self):
        ax = Regular(4, 0, 4)
        assert ax.index([np.nan])[0] == 5

    def test_regular_validation(self):
        with pytest.raises(ValueError):
            Regular(0, 0, 1)
        with pytest.raises(ValueError):
            Regular(10, 1, 1)

    def test_regular_edges_centers(self):
        ax = Regular(4, 0, 8)
        assert list(ax.edges) == [0, 2, 4, 6, 8]
        assert list(ax.centers) == [1, 3, 5, 7]

    def test_variable_index(self):
        ax = Variable([0, 1, 10, 100])
        idx = ax.index([-5, 0.5, 5, 50, 100, 1000])
        assert list(idx) == [0, 1, 2, 3, 3, 4]

    def test_variable_validation(self):
        with pytest.raises(ValueError):
            Variable([1])
        with pytest.raises(ValueError):
            Variable([0, 0, 1])

    def test_int_category(self):
        ax = IntCategory([4, 8, 15], name="njet")
        assert list(ax.index([4, 15, 99])) == [1, 3, 4]

    def test_str_category(self):
        ax = StrCategory(["signal", "background"], name="dataset")
        assert list(ax.index(["background", "unknown"])) == [2, 3]

    def test_duplicate_categories_rejected(self):
        with pytest.raises(ValueError):
            StrCategory(["a", "a"])

    def test_axis_equality(self):
        assert Regular(10, 0, 1, name="x") == Regular(10, 0, 1, name="x")
        assert Regular(10, 0, 1) != Regular(10, 0, 2)
        assert Regular(2, 0, 1) != Variable([0, 0.5, 1])


class TestBuilder:
    def test_paper_style_chain(self):
        # Fig 4 of the paper:
        #   hda.Hist.new.Reg(100, 0, 200, name="met").Double()
        h = Hist.new.Reg(100, 0, 200, name="met").Double()
        assert len(h.axes) == 1
        assert h.axes[0].name == "met"

    def test_multi_axis_chain(self):
        h = (Hist.new.Reg(10, 0, 1, name="x")
             .Var([0, 1, 10], name="y")
             .StrCat(["a", "b"], name="cat")
             .Double())
        assert [type(ax).__name__ for ax in h.axes] == [
            "Regular", "Variable", "StrCategory"]

    def test_each_new_is_fresh(self):
        b1 = Hist.new.Reg(5, 0, 1, name="x")
        h2 = Hist.new.Reg(3, 0, 1, name="y").Double()
        assert len(h2.axes) == 1

    def test_weight_storage(self):
        h = Hist.new.Reg(4, 0, 4, name="x").Weight()
        h.fill(x=[1.0], weight=[2.0])
        assert h.variances().sum() == pytest.approx(4.0)


class TestFill:
    def test_positional_fill(self):
        h = Hist.new.Reg(4, 0, 4, name="x").Double()
        h.fill([0.5, 1.5, 1.7, 3.2])
        assert list(h.values()) == [1, 2, 0, 1]

    def test_named_fill(self):
        h = Hist.new.Reg(2, 0, 2, name="x").Double()
        h.fill(x=[0.5, 1.5])
        assert h.sum() == 2

    def test_missing_name_rejected(self):
        h = Hist.new.Reg(2, 0, 2, name="x").Double()
        with pytest.raises(TypeError):
            h.fill(y=[1.0])

    def test_extra_name_rejected(self):
        h = Hist.new.Reg(2, 0, 2, name="x").Double()
        with pytest.raises(TypeError):
            h.fill(x=[1.0], y=[1.0])

    def test_mixed_positional_named_rejected(self):
        h = Hist.new.Reg(2, 0, 2, name="x").Double()
        with pytest.raises(TypeError):
            h.fill([1.0], x=[1.0])

    def test_wrong_arity_rejected(self):
        h = Hist.new.Reg(2, 0, 2, name="x").Reg(2, 0, 2, name="y").Double()
        with pytest.raises(TypeError):
            h.fill([1.0])

    def test_length_mismatch_rejected(self):
        h = Hist.new.Reg(2, 0, 2, name="x").Reg(2, 0, 2, name="y").Double()
        with pytest.raises(ValueError):
            h.fill([1.0, 1.0], [1.0])

    def test_fill_with_weights(self):
        h = Hist.new.Reg(2, 0, 2, name="x").Double()
        h.fill(x=[0.5, 0.5, 1.5], weight=[1.0, 2.0, 0.5])
        assert list(h.values()) == [3.0, 0.5]

    def test_scalar_weight_broadcast(self):
        h = Hist.new.Reg(1, 0, 1, name="x").Double()
        h.fill(x=[0.5, 0.5], weight=3.0)
        assert h.sum() == 6.0

    def test_fill_accepts_jagged(self):
        h = Hist.new.Reg(4, 0, 100, name="pt").Double()
        arr = JaggedArray.from_lists([[10.0, 30.0], [], [60.0]])
        h.fill(pt=arr)
        assert h.sum() == 3

    def test_empty_fill_noop(self):
        h = Hist.new.Reg(2, 0, 2, name="x").Double()
        h.fill(x=[])
        assert h.sum() == 0

    def test_2d_fill(self):
        h = (Hist.new.Reg(2, 0, 2, name="x")
             .StrCat(["sig", "bkg"], name="kind").Double())
        h.fill(x=[0.5, 1.5], kind=["sig", "bkg"])
        vals = h.values()
        assert vals[0, 0] == 1  # x bin 0, sig
        assert vals[1, 1] == 1  # x bin 1, bkg

    def test_flow_bins(self):
        h = Hist.new.Reg(2, 0, 2, name="x").Double()
        h.fill(x=[-10.0, 10.0])
        assert h.values().sum() == 0
        assert h.values(flow=True).sum() == 2
        assert h.sum(flow=True) == 2


class TestAlgebra:
    def make(self, values):
        h = Hist.new.Reg(4, 0, 4, name="x").Double()
        h.fill(x=values)
        return h

    def test_add(self):
        a = self.make([0.5, 1.5])
        b = self.make([1.5, 3.5])
        c = a + b
        assert list(c.values()) == [1, 2, 0, 1]
        # operands unchanged
        assert a.sum() == 2 and b.sum() == 2

    def test_incompatible_add_rejected(self):
        a = self.make([1.0])
        b = Hist.new.Reg(5, 0, 4, name="x").Double()
        with pytest.raises(ValueError):
            a + b

    def test_sum_builtin(self):
        parts = [self.make([0.5]) for _ in range(3)]
        total = sum(parts)
        assert total.sum() == 3

    def test_iadd(self):
        a = self.make([0.5])
        a += self.make([1.5])
        assert a.sum() == 2

    def test_equality(self):
        assert self.make([1.0]) == self.make([1.0])
        assert self.make([1.0]) != self.make([2.0])

    def test_project(self):
        h = (Hist.new.Reg(2, 0, 2, name="x")
             .Reg(2, 0, 2, name="y").Double())
        h.fill(x=[0.5, 0.5, 1.5], y=[0.5, 1.5, 1.5])
        px = h.project("x")
        assert list(px.values()) == [2, 1]
        with pytest.raises(KeyError):
            h.project("z")

    def test_density(self):
        h = Hist.new.Reg(2, 0, 4, name="x").Double()
        h.fill(x=[1.0, 1.0, 3.0, 3.0])
        density = h.density()
        assert (density * np.diff(h.axes[0].edges)).sum() == pytest.approx(1.0)

    def test_axis_lookup(self):
        h = Hist.new.Reg(2, 0, 2, name="met").Double()
        assert h.axis("met").nbins == 2
        with pytest.raises(KeyError):
            h.axis("nope")


class TestSerialization:
    def test_roundtrip(self):
        h = (Hist.new.Reg(4, 0, 4, name="x")
             .StrCat(["a", "b"], name="c").Weight())
        h.fill(x=[1.0, 2.0], c=["a", "b"], weight=[2.0, 3.0])
        rebuilt = Hist.from_dict(h.to_dict())
        assert rebuilt == h

    def test_nbytes_positive(self):
        h = Hist.new.Reg(100, 0, 1, name="x").Double()
        assert h.nbytes >= 100 * 8


class TestMergeProperties:
    """Histogram accumulation must be commutative and associative --
    the invariant behind the paper's hierarchical reduction (Fig 11)."""

    values = st.lists(st.floats(-10, 30, allow_nan=False), max_size=30)

    @given(values, values)
    @settings(max_examples=50, deadline=None)
    def test_commutative(self, xs, ys):
        a = Hist.new.Reg(8, 0, 20, name="x").Double().fill(x=xs)
        b = Hist.new.Reg(8, 0, 20, name="x").Double().fill(x=ys)
        assert a + b == b + a

    @given(values, values, values)
    @settings(max_examples=50, deadline=None)
    def test_associative(self, xs, ys, zs):
        mk = lambda data: (Hist.new.Reg(8, 0, 20, name="x")
                           .Double().fill(x=data))
        a, b, c = mk(xs), mk(ys), mk(zs)
        assert (a + b) + c == a + (b + c)

    @given(values, values)
    @settings(max_examples=50, deadline=None)
    def test_merge_equals_single_fill(self, xs, ys):
        merged = (Hist.new.Reg(8, 0, 20, name="x").Double().fill(x=xs)
                  + Hist.new.Reg(8, 0, 20, name="x").Double().fill(x=ys))
        single = Hist.new.Reg(8, 0, 20, name="x").Double().fill(
            x=list(xs) + list(ys))
        assert merged == single
