"""Unit and property-based tests for JaggedArray."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hep.jagged import JaggedArray


@st.composite
def jagged_arrays(draw, max_events=20, max_count=8, elements=None):
    if elements is None:
        elements = st.floats(-1e6, 1e6, allow_nan=False)
    n = draw(st.integers(0, max_events))
    lists = [draw(st.lists(elements, max_size=max_count)) for _ in range(n)]
    return JaggedArray.from_lists(lists), lists


class TestConstruction:
    def test_from_lists_roundtrip(self):
        data = [[1.0, 2.0], [], [3.0]]
        arr = JaggedArray.from_lists(data)
        assert arr.tolist() == data
        assert arr.n_events == 3
        assert list(arr.counts) == [2, 0, 1]

    def test_from_counts(self):
        arr = JaggedArray.from_counts([2, 1], [10, 20, 30])
        assert arr.tolist() == [[10, 20], [30]]

    def test_bad_offsets_rejected(self):
        with pytest.raises(ValueError):
            JaggedArray([1, 2], [1, 2])     # doesn't start at 0
        with pytest.raises(ValueError):
            JaggedArray([1, 2], [0, 3, 2])  # decreasing
        with pytest.raises(ValueError):
            JaggedArray([1, 2], [0, 1])     # doesn't cover content

    def test_content_must_be_1d(self):
        with pytest.raises(ValueError):
            JaggedArray(np.zeros((2, 2)), [0, 4])

    def test_empty(self):
        arr = JaggedArray.from_lists([])
        assert arr.n_events == 0
        assert arr.size == 0


class TestIndexing:
    @pytest.fixture
    def arr(self):
        return JaggedArray.from_lists([[1, 2, 3], [], [4, 5], [6]])

    def test_int_index_returns_event(self, arr):
        assert list(arr[0]) == [1, 2, 3]
        assert list(arr[1]) == []
        assert list(arr[-1]) == [6]

    def test_out_of_range(self, arr):
        with pytest.raises(IndexError):
            arr[4]

    def test_slice(self, arr):
        sliced = arr[1:3]
        assert sliced.tolist() == [[], [4, 5]]

    def test_strided_slice(self, arr):
        assert arr[::2].tolist() == [[1, 2, 3], [4, 5]]

    def test_event_boolean_mask(self, arr):
        masked = arr[np.array([True, False, True, False])]
        assert masked.tolist() == [[1, 2, 3], [4, 5]]

    def test_event_integer_index(self, arr):
        assert arr.select_events([3, 0]).tolist() == [[6], [1, 2, 3]]

    def test_jagged_element_mask(self, arr):
        mask = arr > 2
        assert arr[mask].tolist() == [[3], [], [4, 5], [6]]

    def test_mask_structure_mismatch_rejected(self, arr):
        other = JaggedArray.from_lists([[True], [], [], []])
        with pytest.raises(ValueError):
            arr.mask_elements(other)


class TestArithmetic:
    def test_scalar_ops(self):
        arr = JaggedArray.from_lists([[1.0, 2.0], [3.0]])
        assert (arr + 1).tolist() == [[2, 3], [4]]
        assert (arr * 2).tolist() == [[2, 4], [6]]
        assert (2 * arr).tolist() == [[2, 4], [6]]
        assert (-arr).tolist() == [[-1, -2], [-3]]
        assert abs(arr - 2).tolist() == [[1, 0], [1]]

    def test_jagged_jagged_ops(self):
        a = JaggedArray.from_lists([[1, 2], [3]])
        b = JaggedArray.from_lists([[10, 20], [30]])
        assert (a + b).tolist() == [[11, 22], [33]]

    def test_structure_mismatch_rejected(self):
        a = JaggedArray.from_lists([[1, 2], [3]])
        b = JaggedArray.from_lists([[1], [2, 3]])
        with pytest.raises(ValueError):
            a + b

    def test_per_event_broadcast(self):
        arr = JaggedArray.from_lists([[1, 2], [3], []])
        weights = np.array([10.0, 100.0, 5.0])
        assert (arr * weights).tolist() == [[10, 20], [300], []]

    def test_comparison_produces_jagged_bool(self):
        arr = JaggedArray.from_lists([[1, 5], [3]])
        mask = arr >= 3
        assert isinstance(mask, JaggedArray)
        assert mask.tolist() == [[False, True], [True]]

    def test_logical_combinators(self):
        arr = JaggedArray.from_lists([[1, 5, 10]])
        both = (arr > 2) & (arr < 8)
        assert both.tolist() == [[False, True, False]]
        either = (arr < 2) | (arr > 8)
        assert either.tolist() == [[True, False, True]]
        neither = ~either
        assert neither.tolist() == [[False, True, False]]


class TestReductions:
    def test_sum(self):
        arr = JaggedArray.from_lists([[1.0, 2.0], [], [3.0]])
        assert list(arr.sum()) == [3, 0, 3]

    def test_max_min_with_empties(self):
        arr = JaggedArray.from_lists([[1.0, 5.0], [], [-2.0]])
        assert list(arr.max()) == [5, -np.inf, -2]
        assert list(arr.min()) == [1, np.inf, -2]

    def test_max_consecutive_empties(self):
        arr = JaggedArray.from_lists([[], [], [7.0], [], [1.0, 9.0], []])
        out = arr.max(empty_value=-1.0)
        assert list(out) == [-1, -1, 7, -1, 9, -1]

    def test_count_nonzero_any_all(self):
        arr = JaggedArray.from_lists([[1, 0], [0], [], [2, 3]])
        assert list(arr.count_nonzero()) == [1, 0, 0, 2]
        assert list(arr.any()) == [True, False, False, True]
        assert list(arr.all()) == [False, False, True, True]

    def test_first(self):
        arr = JaggedArray.from_lists([[7.0, 1.0], []])
        out = arr.first(fill=-1.0)
        assert list(out) == [7, -1]

    def test_argmax_local(self):
        arr = JaggedArray.from_lists([[1.0, 9.0, 3.0], [], [5.0]])
        assert list(arr.argmax_local()) == [1, -1, 0]


class TestOrdering:
    def test_sort_local(self):
        arr = JaggedArray.from_lists([[3.0, 1.0, 2.0], [5.0, 4.0]])
        assert arr.sort_local().tolist() == [[1, 2, 3], [4, 5]]
        assert arr.sort_local(ascending=False).tolist() == [[3, 2, 1], [5, 4]]

    def test_take_local_reorders(self):
        arr = JaggedArray.from_lists([[10.0, 20.0], [30.0]])
        idx = JaggedArray.from_lists([[1, 0], [0]])
        assert arr.take_local(idx).tolist() == [[20, 10], [30]]

    def test_leading(self):
        arr = JaggedArray.from_lists([[9.0, 8.0, 7.0], [1.0], []])
        assert arr.leading(2).tolist() == [[9, 8], [1], []]

    def test_leading_zero(self):
        arr = JaggedArray.from_lists([[1.0]])
        assert arr.leading(0).tolist() == [[]]


class TestCombinations:
    def test_pairs_simple(self):
        arr = JaggedArray.from_lists([[10, 20, 30], [40], [50, 60]])
        event_of, i, j = arr.pair_indices()
        pairs = sorted(zip(event_of.tolist(),
                           arr.content[i].tolist(),
                           arr.content[j].tolist()))
        assert pairs == [(0, 10, 20), (0, 10, 30), (0, 20, 30), (2, 50, 60)]

    def test_pairs_empty_events(self):
        arr = JaggedArray.from_lists([[], [1], []])
        event_of, i, j = arr.pair_indices()
        assert len(event_of) == 0

    def test_triples(self):
        arr = JaggedArray.from_lists([[1, 2, 3, 4], [5, 6]])
        event_of, i, j, k = arr.triple_indices()
        assert len(event_of) == 4  # C(4,3)
        assert set(event_of.tolist()) == {0}
        triples = sorted(zip(arr.content[i], arr.content[j], arr.content[k]))
        assert triples == [(1, 2, 3), (1, 2, 4), (1, 3, 4), (2, 3, 4)]

    def test_pair_counts_match_formula(self):
        arr = JaggedArray.from_lists(
            [list(range(c)) for c in [0, 1, 2, 5, 3]])
        event_of, _, _ = arr.pair_indices()
        expected = {2: 1, 3: 10, 4: 3}
        observed = {}
        for e in event_of:
            observed[int(e)] = observed.get(int(e), 0) + 1
        assert observed == expected


class TestProperties:
    @given(jagged_arrays())
    @settings(max_examples=60, deadline=None)
    def test_counts_sum_to_size(self, pair):
        arr, lists = pair
        assert int(arr.counts.sum()) == arr.size

    @given(jagged_arrays())
    @settings(max_examples=60, deadline=None)
    def test_tolist_roundtrip(self, pair):
        arr, lists = pair
        rebuilt = JaggedArray.from_lists(arr.tolist())
        assert np.array_equal(rebuilt.offsets, arr.offsets)
        assert np.allclose(rebuilt.content.astype(float),
                           arr.content.astype(float))

    @given(jagged_arrays())
    @settings(max_examples=60, deadline=None)
    def test_sum_matches_python(self, pair):
        arr, lists = pair
        expected = [sum(lst) for lst in lists]
        assert np.allclose(arr.sum(), expected)

    @given(jagged_arrays())
    @settings(max_examples=60, deadline=None)
    def test_mask_then_counts_consistent(self, pair):
        arr, lists = pair
        mask = arr > 0
        kept = arr[mask]
        expected = [[v for v in lst if v > 0] for lst in lists]
        assert kept.tolist() == expected

    @given(jagged_arrays())
    @settings(max_examples=60, deadline=None)
    def test_sort_preserves_multiset(self, pair):
        arr, lists = pair
        sorted_arr = arr.sort_local()
        for got, lst in zip(sorted_arr.tolist(), lists):
            assert got == sorted(lst)

    @given(jagged_arrays(max_events=10, max_count=6))
    @settings(max_examples=40, deadline=None)
    def test_pair_count_formula(self, pair):
        arr, lists = pair
        event_of, i, j = arr.pair_indices()
        expected = sum(len(lst) * (len(lst) - 1) // 2 for lst in lists)
        assert len(event_of) == expected
        # All pairs are within-event and strictly ordered.
        assert np.all(i < j)
