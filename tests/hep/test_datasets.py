"""Tests for synthetic dataset generation and the Table II catalog."""

import numpy as np
import pytest

from repro.hep import kinematics as kin
from repro.hep.datasets import (
    HIGGS_MASS,
    TABLE2,
    TRIPHOTON_MA,
    TRIPHOTON_MX,
    generate_dv3_events,
    generate_triphoton_events,
    write_dataset,
)
from repro.hep.nanoevents import NanoEventsFactory


class TestDV3Generation:
    @pytest.fixture(scope="class")
    def branches(self):
        rng = np.random.default_rng(1)
        return generate_dv3_events(5000, rng, signal_fraction=0.2)

    def test_expected_branches(self, branches):
        assert {"Jet_pt", "Jet_eta", "Jet_phi", "Jet_mass", "Jet_btag",
                "MET_pt", "MET_phi", "genWeight"} <= set(branches)

    def test_structure_consistent(self, branches):
        jets = branches["Jet_pt"]
        assert jets.n_events == 5000
        for name in ("Jet_eta", "Jet_phi", "Jet_mass", "Jet_btag"):
            assert np.array_equal(branches[name].offsets, jets.offsets)

    def test_physical_ranges(self, branches):
        assert (branches["Jet_pt"].content > 0).all()
        btag = branches["Jet_btag"].content
        assert ((btag >= 0) & (btag <= 1)).all()
        assert (branches["MET_pt"] >= 0).all()

    def test_higgs_peak_reconstructable(self, branches):
        """Signal dijets must reconstruct near 125 GeV."""
        jets = branches["Jet_pt"]
        event_of, i, j = jets.pair_indices()
        mass = kin.invariant_mass_pairs(
            branches["Jet_pt"].content[i], branches["Jet_eta"].content[i],
            branches["Jet_phi"].content[i], branches["Jet_mass"].content[i],
            branches["Jet_pt"].content[j], branches["Jet_eta"].content[j],
            branches["Jet_phi"].content[j], branches["Jet_mass"].content[j])
        btag_i = branches["Jet_btag"].content[i]
        btag_j = branches["Jet_btag"].content[j]
        candidates = mass[(btag_i > 0.7) & (btag_j > 0.7)]
        window = ((candidates > HIGGS_MASS - 25)
                  & (candidates < HIGGS_MASS + 25)).mean()
        assert window > 0.5, "b-tagged dijet mass should peak at m_H"

    def test_deterministic(self):
        a = generate_dv3_events(100, np.random.default_rng(5))
        b = generate_dv3_events(100, np.random.default_rng(5))
        assert np.array_equal(a["Jet_pt"].content, b["Jet_pt"].content)

    def test_invalid_nevents(self):
        with pytest.raises(ValueError):
            generate_dv3_events(0, np.random.default_rng(0))


class TestTriphotonGeneration:
    @pytest.fixture(scope="class")
    def branches(self):
        rng = np.random.default_rng(2)
        return generate_triphoton_events(5000, rng, signal_fraction=0.3)

    def test_expected_branches(self, branches):
        assert {"Photon_pt", "Photon_eta", "Photon_phi"} <= set(branches)

    def test_resonances_reconstructable(self, branches):
        photons = branches["Photon_pt"]
        event_of, i, j, k = photons.triple_indices()
        pt = branches["Photon_pt"].content
        eta = branches["Photon_eta"].content
        phi = branches["Photon_phi"].content
        zeros = np.zeros(len(i))
        m3 = kin.invariant_mass_triples(
            (pt[i], pt[j], pt[k]), (eta[i], eta[j], eta[k]),
            (phi[i], phi[j], phi[k]), (zeros, zeros, zeros))
        near_mx = ((m3 > 0.9 * TRIPHOTON_MX)
                   & (m3 < 1.1 * TRIPHOTON_MX)).sum()
        assert near_mx > 100, "triphoton mass should peak at m_X"

    def test_diphoton_pair_mass(self, branches):
        photons = branches["Photon_pt"]
        event_of, i, j = photons.pair_indices()
        pt = branches["Photon_pt"].content
        eta = branches["Photon_eta"].content
        phi = branches["Photon_phi"].content
        m2 = kin.invariant_mass_pairs(pt[i], eta[i], phi[i], 0.0,
                                      pt[j], eta[j], phi[j], 0.0)
        near_ma = ((m2 > 0.9 * TRIPHOTON_MA)
                   & (m2 < 1.1 * TRIPHOTON_MA)).sum()
        assert near_ma > 100, "diphoton mass should peak at m_a"


class TestWriteDataset:
    def test_writes_readable_files(self, tmp_path):
        paths = write_dataset(str(tmp_path), "dv3", n_files=3,
                              events_per_file=200, seed=9, basket_size=100)
        assert len(paths) == 3
        chunks = NanoEventsFactory.from_root(paths, chunks_per_file=2)
        assert len(chunks) == 6
        events = chunks[0].load()
        assert events.nevents == 100
        assert "Jet" in events.collections

    def test_files_differ_but_deterministic(self, tmp_path):
        first = write_dataset(str(tmp_path / "a"), "dv3", 2, 100, seed=3)
        second = write_dataset(str(tmp_path / "b"), "dv3", 2, 100, seed=3)
        e1 = NanoEventsFactory.from_root(first[0])[0].load()
        e2 = NanoEventsFactory.from_root(second[0])[0].load()
        assert np.array_equal(e1.Jet.pt.content, e2.Jet.pt.content)
        # different files within a dataset use different substreams
        e3 = NanoEventsFactory.from_root(first[1])[0].load()
        assert not np.array_equal(e1.Jet.pt.content, e3.Jet.pt.content)

    def test_unknown_kind(self, tmp_path):
        with pytest.raises(ValueError):
            write_dataset(str(tmp_path), "nope", 1, 10)

    def test_triphoton_kind(self, tmp_path):
        paths = write_dataset(str(tmp_path), "triphoton", 1, 150, seed=4)
        events = NanoEventsFactory.from_root(paths)[0].load()
        assert "Photon" in events.collections


class TestTable2Catalog:
    def test_all_rows_present(self):
        assert set(TABLE2) == {"DV3-Small", "DV3-Medium", "DV3-Large",
                               "DV3-Huge", "RS-TriPhoton"}

    def test_paper_values(self):
        assert TABLE2["DV3-Large"].n_tasks == 17_000
        assert TABLE2["DV3-Large"].input_bytes == pytest.approx(1.2e12)
        assert TABLE2["DV3-Huge"].n_tasks == 185_000
        assert TABLE2["DV3-Small"].input_bytes == pytest.approx(25e9)
        assert TABLE2["DV3-Medium"].input_bytes == pytest.approx(200e9)
        assert TABLE2["RS-TriPhoton"].input_bytes == pytest.approx(500e9)
        assert TABLE2["RS-TriPhoton"].n_tasks == 4_000

    def test_applications_assigned(self):
        assert TABLE2["RS-TriPhoton"].application == "triphoton"
        assert all(spec.application == "dv3"
                   for name, spec in TABLE2.items() if "DV3" in name)
