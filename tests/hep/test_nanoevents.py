"""Unit tests for NanoEvents and the factory."""

import numpy as np
import pytest

from repro.hep.jagged import JaggedArray
from repro.hep.nanoevents import NanoEventsFactory
from repro.hep.records import JaggedRecord
from repro.hep.root import write_root_file


@pytest.fixture
def dataset(tmp_path):
    paths = []
    for i in range(2):
        path = str(tmp_path / f"file{i}")
        jets = JaggedArray.from_lists(
            [[30.0 + i, 20.0], [50.0], [], [40.0, 10.0]])
        etas = JaggedArray.from_lists([[0.1, 0.2], [0.3], [], [0.4, 0.5]])
        write_root_file(path, "Events", {
            "Jet_pt": jets,
            "Jet_eta": etas,
            "MET_pt": np.array([5.0, 6.0, 7.0, 8.0]) + i,
            "MET_phi": np.zeros(4),
            "genWeight": np.ones(4),
        }, basket_size=2)
        paths.append(path + ".npz")
    return paths


class TestFactory:
    def test_chunks_per_file(self, dataset):
        chunks = NanoEventsFactory.from_root(dataset, chunks_per_file=2)
        assert len(chunks) == 4
        assert all(c.nevents == 2 for c in chunks)

    def test_single_path_accepted(self, dataset):
        chunks = NanoEventsFactory.from_root(dataset[0])
        assert len(chunks) == 1
        assert chunks[0].nevents == 4

    def test_metadata_propagates(self, dataset):
        chunks = NanoEventsFactory.from_root(
            dataset, metadata={"dataset": "SingleMu"})
        assert all(c.metadata["dataset"] == "SingleMu" for c in chunks)
        events = chunks[0].load()
        assert events.metadata["dataset"] == "SingleMu"

    def test_chunks_cover_all_entries(self, dataset):
        chunks = NanoEventsFactory.from_root(dataset, chunks_per_file=2)
        total = sum(c.nevents for c in chunks)
        assert total == 8


class TestNanoEvents:
    def test_collections_discovered(self, dataset):
        events = NanoEventsFactory.from_root(dataset)[0].load()
        assert events.collections == ["Jet", "MET"]

    def test_jagged_collection_access(self, dataset):
        events = NanoEventsFactory.from_root(dataset)[0].load()
        jets = events.Jet
        assert isinstance(jets, JaggedRecord)
        assert set(jets.fields) == {"pt", "eta"}
        assert jets.pt.tolist()[1] == [50.0]

    def test_flat_record_access(self, dataset):
        events = NanoEventsFactory.from_root(dataset)[0].load()
        assert list(events.MET.pt) == [5, 6, 7, 8]
        with pytest.raises(AttributeError):
            events.MET.nonsense

    def test_scalar_branch_access(self, dataset):
        events = NanoEventsFactory.from_root(dataset)[0].load()
        assert list(events.genWeight) == [1, 1, 1, 1]

    def test_unknown_collection(self, dataset):
        events = NanoEventsFactory.from_root(dataset)[0].load()
        with pytest.raises(AttributeError):
            events.Muon

    def test_chunk_restricts_entries(self, dataset):
        chunk = NanoEventsFactory.from_root(dataset, chunks_per_file=2)[1]
        events = chunk.load()
        assert events.nevents == 2
        assert events.Jet.pt.tolist() == [[], [40.0, 10.0]]
        assert list(events.MET.pt) == [7, 8]

    def test_column_pruning_tracked(self, dataset):
        events = NanoEventsFactory.from_root(dataset)[0].load()
        _ = events.MET.pt
        assert events.branches_read == ["MET_pt"]
        _ = events.Jet.pt
        assert set(events.branches_read) == {"MET_pt", "Jet_pt", "Jet_eta"}

    def test_collection_cached(self, dataset):
        events = NanoEventsFactory.from_root(dataset)[0].load()
        assert events.Jet is events.Jet
