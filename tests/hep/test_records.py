"""Unit tests for JaggedRecord."""

import numpy as np
import pytest

from repro.hep.jagged import JaggedArray
from repro.hep.records import JaggedRecord


@pytest.fixture
def jets():
    return JaggedRecord({
        "pt": JaggedArray.from_lists([[50.0, 30.0, 10.0], [], [70.0]]),
        "eta": JaggedArray.from_lists([[0.1, 2.9, -1.0], [], [0.5]]),
        "btag": JaggedArray.from_lists([[0.9, 0.2, 0.5], [], [0.95]]),
    })


class TestConstruction:
    def test_fields(self, jets):
        assert set(jets.fields) == {"pt", "eta", "btag"}
        assert jets.n_events == 3
        assert list(jets.counts) == [3, 0, 1]

    def test_structure_mismatch_rejected(self):
        with pytest.raises(ValueError):
            JaggedRecord({
                "a": JaggedArray.from_lists([[1.0], []]),
                "b": JaggedArray.from_lists([[], [1.0]]),
            })

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            JaggedRecord({})

    def test_non_jagged_rejected(self):
        with pytest.raises(TypeError):
            JaggedRecord({"a": np.zeros(3)})

    def test_from_arrays(self):
        rec = JaggedRecord.from_arrays([2, 1], pt=[1.0, 2.0, 3.0],
                                       eta=[0.0, 0.1, 0.2])
        assert rec.pt.tolist() == [[1, 2], [3]]


class TestAccess:
    def test_attribute_and_item(self, jets):
        assert jets.pt.tolist() == jets["pt"].tolist()

    def test_missing_field(self, jets):
        with pytest.raises(AttributeError):
            jets.mass

    def test_with_field(self, jets):
        extended = jets.with_field(
            "pt2", jets.pt * 2)
        assert extended.pt2.tolist()[0] == [100, 60, 20]
        # original untouched
        assert "pt2" not in jets.fields

    def test_with_field_structure_checked(self, jets):
        with pytest.raises(ValueError):
            jets.with_field("x", JaggedArray.from_lists([[1.0]]))


class TestSelection:
    def test_mask_elements_applies_to_all_fields(self, jets):
        good = jets[jets.pt > 20]
        assert good.pt.tolist() == [[50, 30], [], [70]]
        assert good.eta.tolist() == [[0.1, 2.9], [], [0.5]]

    def test_select_events(self, jets):
        sub = jets.select_events([2, 0])
        assert sub.pt.tolist() == [[70], [50, 30, 10]]

    def test_event_slice(self, jets):
        assert jets[0:2].pt.tolist() == [[50, 30, 10], []]

    def test_sort_by_descending_default(self):
        rec = JaggedRecord({
            "pt": JaggedArray.from_lists([[10.0, 50.0, 30.0]]),
            "idx": JaggedArray.from_lists([[0, 1, 2]]),
        })
        by_pt = rec.sort_by("pt")
        assert by_pt.pt.tolist() == [[50, 30, 10]]
        assert by_pt.idx.tolist() == [[1, 2, 0]]

    def test_leading(self, jets):
        top = jets.sort_by("pt").leading(2)
        assert top.pt.tolist() == [[50, 30], [], [70]]


class TestCombinatorics:
    def test_pairs(self, jets):
        event_of, first, second = jets.pairs(["pt"])
        assert list(event_of) == [0, 0, 0]
        got = sorted(zip(first["pt"], second["pt"]))
        assert got == [(30, 10), (50, 30), (50, 10)] or got == sorted(
            [(50, 30), (50, 10), (30, 10)])

    def test_triples(self):
        rec = JaggedRecord({
            "pt": JaggedArray.from_lists([[1.0, 2.0, 3.0], [4.0]]),
        })
        event_of, a, b, c = rec.triples(["pt"])
        assert list(event_of) == [0]
        assert (a["pt"][0], b["pt"][0], c["pt"][0]) == (1, 2, 3)
