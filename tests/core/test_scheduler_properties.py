"""Property-based tests of scheduler invariants.

Random small workflows and cluster shapes; the invariants must hold for
every draw:

* every task completes exactly once (in the success record),
* dependency order is respected in the trace,
* concurrency never exceeds provisioned cores,
* cache accounting returns to a consistent state.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import SchedulerConfig
from repro.core.files import FileKind, SimFile
from repro.core.manager import TaskVineManager, stable_trace_id
from repro.core.spec import SimTask, SimWorkflow
from repro.sim.cluster import NodeSpec

from .conftest import TEST_CONFIG, Env

MB = 1e6


@st.composite
def layered_workflows(draw):
    """Random layered DAGs: each task consumes outputs from the
    previous layer."""
    n_layers = draw(st.integers(1, 3))
    layer_sizes = [draw(st.integers(1, 6)) for _ in range(n_layers)]
    files = []
    tasks = []
    previous_outputs = []
    uid = 0
    for layer, size in enumerate(layer_sizes):
        outputs = []
        for i in range(size):
            inputs = []
            if layer == 0:
                chunk = f"in-{uid}"
                files.append(SimFile(chunk, 10 * MB, FileKind.INPUT))
                inputs = [chunk]
            else:
                # consume a random non-empty subset of previous layer
                n_deps = draw(st.integers(1, len(previous_outputs)))
                inputs = previous_outputs[:n_deps]
            out = f"mid-{uid}"
            files.append(SimFile(out, draw(st.sampled_from(
                [1 * MB, 5 * MB, 20 * MB])), FileKind.INTERMEDIATE))
            tasks.append(SimTask(
                id=f"t-{uid}",
                compute=draw(st.floats(0.1, 5.0)),
                inputs=tuple(inputs), outputs=(out,),
                category="proc" if layer == 0 else "accum"))
            outputs.append(out)
            uid += 1
        previous_outputs = outputs
    return SimWorkflow(tasks, files)


class TestSchedulerProperties:
    @given(layered_workflows(), st.integers(1, 4), st.integers(1, 4))
    @settings(max_examples=30, deadline=None)
    def test_every_task_completes_once(self, workflow, n_workers, cores):
        env = Env(n_workers=n_workers, spec=NodeSpec(cores=cores))
        manager = TaskVineManager(env.sim, env.cluster, env.storage,
                                  workflow, config=TEST_CONFIG,
                                  trace=env.trace)
        result = manager.run(limit=1e6)
        assert result.completed
        ok = [r for r in env.trace.tasks if r.ok]
        assert len(ok) == len(workflow)
        assert result.tasks_done == len(workflow)

    @given(layered_workflows(), st.integers(1, 3))
    @settings(max_examples=20, deadline=None)
    def test_dependency_order_in_trace(self, workflow, n_workers):
        env = Env(n_workers=n_workers)
        manager = TaskVineManager(env.sim, env.cluster, env.storage,
                                  workflow, config=TEST_CONFIG,
                                  trace=env.trace)
        manager.run(limit=1e6)
        # per-category end/start ordering: every consumer starts after
        # all its producers ended.  Match records through replica
        # timing: successful records are unique per task here, keyed by
        # the hashed id the manager writes.
        by_id = {}
        for record in env.trace.tasks:
            if record.ok:
                by_id[record.task_id] = record
        for task in workflow.tasks.values():
            consumer = by_id[stable_trace_id(task.id)]
            for dep in workflow.task_dependencies(task.id):
                producer = by_id[stable_trace_id(dep)]
                assert producer.t_end <= consumer.t_start + 1e-9

    @given(layered_workflows(), st.integers(1, 3), st.integers(1, 3))
    @settings(max_examples=20, deadline=None)
    def test_concurrency_bounded_by_cores(self, workflow, n_workers,
                                          cores):
        env = Env(n_workers=n_workers, spec=NodeSpec(cores=cores))
        manager = TaskVineManager(env.sim, env.cluster, env.storage,
                                  workflow, config=TEST_CONFIG,
                                  trace=env.trace)
        manager.run(limit=1e6)
        _, levels = env.trace.concurrency_series()
        assert levels.max() <= n_workers * cores

    @given(layered_workflows())
    @settings(max_examples=20, deadline=None)
    def test_disk_accounting_consistent(self, workflow):
        env = Env(n_workers=2)
        manager = TaskVineManager(env.sim, env.cluster, env.storage,
                                  workflow, config=TEST_CONFIG,
                                  trace=env.trace)
        manager.run(limit=1e6)
        for agent in manager.agents.values():
            # disk usage equals the sum of cached entries
            assert agent.node.disk.used == sum(
                e.size for e in agent.cache.values())
            # nothing left pinned after the run
            assert all(e.pins == 0 for e in agent.cache.values())
