"""Locality tie-breaking is an explicit rule, not iteration order.

When two workers hold the same cached input bytes for a task, the
lowest node id wins -- in both the manager's built-in fast path
(``_pick_worker``) and the pluggable :class:`LocalityPolicy`.  Before
this rule the winner fell out of replica-set iteration order, which is
an implementation detail the incremental index must be free to change.
"""

from repro.core.files import FileKind, SimFile
from repro.core.manager import TaskVineManager
from repro.core.scheduling import LocalityPolicy
from repro.core.spec import SimTask, SimWorkflow
from repro.sim.storage import MB

from tests.core.conftest import TEST_CONFIG, Env


def _tie_workflow():
    files = [
        SimFile("a", 10 * MB, FileKind.INTERMEDIATE),
        SimFile("b", 5 * MB, FileKind.INTERMEDIATE),
        SimFile("out", 1 * MB, FileKind.OUTPUT),
        SimFile("seed", 1 * MB, FileKind.INPUT),
    ]
    tasks = [
        SimTask(id="make-a", compute=1.0, inputs=("seed",),
                outputs=("a",), category="proc", function="f"),
        SimTask(id="make-b", compute=1.0, inputs=("seed",),
                outputs=("b",), category="proc", function="f"),
        SimTask(id="consume", compute=1.0, inputs=("a", "b"),
                outputs=("out",), category="accum", function="g"),
    ]
    return SimWorkflow(tasks, files)


def _manager(n_workers=3):
    env = Env(n_workers=n_workers)
    manager = TaskVineManager(env.sim, env.cluster, env.storage,
                              _tie_workflow(), config=TEST_CONFIG)
    return env, manager


def _hold(manager, node_id, name, size):
    manager.agents[node_id].reserve(name, size)
    manager.replicas.add(name, node_id)


def test_pick_worker_tie_prefers_lowest_node_id():
    _env, manager = _manager()
    # workers 2 and 3 hold identical bytes of input "a"
    for node_id in (3, 2):  # insertion order must not matter
        _hold(manager, node_id, "a", 10 * MB)
    chosen = manager._pick_worker("consume")
    assert chosen is not None and chosen.node_id == 2


def test_pick_worker_more_bytes_beats_lower_node_id():
    _env, manager = _manager()
    _hold(manager, 1, "a", 10 * MB)
    _hold(manager, 3, "a", 10 * MB)
    _hold(manager, 3, "b", 5 * MB)  # node 3 holds 15 MB total
    chosen = manager._pick_worker("consume")
    assert chosen is not None and chosen.node_id == 3


def test_locality_policy_tie_prefers_lowest_node_id():
    _env, manager = _manager()
    for node_id in (3, 2):
        _hold(manager, node_id, "a", 10 * MB)
    policy = LocalityPolicy()
    task = manager.workflow.tasks["consume"]
    sizes = {n: manager.workflow.files[n].size for n in task.inputs}
    # candidate list order must not matter either
    for order in ((3, 2, 1), (1, 2, 3)):
        candidates = [manager.agents[i] for i in order]
        chosen = policy.choose(task, candidates, manager.replicas,
                               sizes)
        assert chosen is not None and chosen.node_id == 2


def test_locality_policy_more_bytes_wins():
    _env, manager = _manager()
    _hold(manager, 1, "a", 10 * MB)
    _hold(manager, 3, "a", 10 * MB)
    _hold(manager, 3, "b", 5 * MB)
    policy = LocalityPolicy()
    task = manager.workflow.tasks["consume"]
    sizes = {n: manager.workflow.files[n].size for n in task.inputs}
    candidates = [manager.agents[i] for i in (1, 2, 3)]
    chosen = policy.choose(task, candidates, manager.replicas, sizes)
    assert chosen is not None and chosen.node_id == 3
