"""Property tests: incremental scheduling indices == brute force.

The perf work replaced per-request scans with incrementally maintained
state: the :class:`ReplicaIndex` reverse map and insertion-order
sequence, the worker core/cached-bytes scoreboards, and the per-file
consumer countdown.  Each of these is redundant -- derivable from the
primary state -- so under arbitrary operation sequences (including
node drops and preemption) the incremental form must stay *exactly*
equal to a brute-force recompute.  Divergence here is how a fast
scheduler silently becomes a wrong one.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cache import ReplicaIndex
from repro.core.files import FileKind
from repro.core.manager import TaskVineManager

from .conftest import TEST_CONFIG, Env
from .test_scheduler_properties import layered_workflows

FILES = [f"f{i}" for i in range(8)]
NODES = [-1, 0, 1, 2, 3]

_ops = st.lists(
    st.one_of(
        st.tuples(st.just("add"), st.sampled_from(FILES),
                  st.sampled_from(NODES)),
        st.tuples(st.just("remove"), st.sampled_from(FILES),
                  st.sampled_from(NODES)),
        st.tuples(st.just("drop"), st.just(""), st.sampled_from(NODES)),
    ),
    min_size=0, max_size=60)


def _model_drop(model, node):
    """Brute-force drop_node on the plain forward map: scan every file
    in insertion order, exactly as the pre-index implementation did."""
    lost = []
    for name in list(model):
        nodes = model[name]
        nodes.discard(node)
        if not nodes:
            del model[name]
            lost.append(name)
    return lost


class TestReplicaIndexMatchesBruteForce:
    @given(_ops)
    @settings(max_examples=200, deadline=None)
    def test_index_equals_forward_map_model(self, ops):
        index = ReplicaIndex()
        model = {}  # file -> set of nodes, insertion-ordered like a dict
        for op, name, node in ops:
            if op == "add":
                index.add(name, node)
                model.setdefault(name, set()).add(node)
            elif op == "remove":
                index.remove(name, node)
                nodes = model.get(name)
                if nodes is not None:
                    nodes.discard(node)
                    if not nodes:
                        del model[name]
            else:
                lost = index.drop_node(node)
                assert lost == _model_drop(model, node)

            # forward map: same contents AND same insertion order
            assert dict(index._locations) == model
            assert list(index._locations) == list(model)
            # reverse map consistent with the forward map
            for f, nodes in model.items():
                for n in nodes:
                    assert f in index._by_node.get(n, set())
            for n, held in index._by_node.items():
                for f in held:
                    assert n in model.get(f, set())
            # order index covers exactly the live files
            assert set(index._order) == set(model)

        # derived views agree with a brute-force scan of the model
        for n in NODES:
            assert index.files_on(n) == [
                f for f in model if n in model[f]]
        for f in FILES:
            assert index.locations(f) == model.get(f, set())
            assert index.replica_count(f) == len(model.get(f, ()))
            assert index.available(f) == bool(model.get(f))


class TestSchedulerScoreboardsMatchBruteForce:
    @given(layered_workflows(), st.integers(1, 3),
           st.sampled_from([0.0, 0.0, 0.02, 0.1]))
    @settings(max_examples=25, deadline=None)
    def test_scoreboards_after_run(self, workflow, n_workers, preempt):
        """After a full run -- including preemption-driven drop_node,
        requeue and lineage recovery -- every incremental counter equals
        its brute-force recompute."""
        env = Env(n_workers=n_workers, preemption_rate=preempt, seed=5)
        manager = TaskVineManager(env.sim, env.cluster, env.storage,
                                  workflow, config=TEST_CONFIG,
                                  trace=env.trace)
        manager.run(limit=1e5)

        # worker scoreboards: cores and cached bytes
        for agent in manager.agents.values():
            assert agent._used_cores == sum(agent.assigned.values())
            assert agent.free_slots() == (
                agent.cores - sum(agent.assigned.values()))
            assert agent.cached_bytes() == sum(
                e.size for e in agent.cache.values())

        # consumer countdown == "consumers not yet done", per file.
        # Only intermediates are decremented (and only intermediates
        # are ever consulted -- the countdown gates retention release);
        # dataset INPUT files keep their initial count by design.
        consumers = manager.workflow.consumers
        files = manager.workflow.files
        done = manager.done
        for name, undone in manager._consumers_undone.items():
            if files[name].kind == FileKind.INPUT:
                continue
            assert undone == sum(
                1 for c in consumers.get(name, ()) if c not in done)

        # replica index internal consistency after drops/recovery
        index = manager.replicas
        for f, nodes in index._locations.items():
            for n in nodes:
                assert f in index._by_node.get(n, set())
        for n, held in index._by_node.items():
            for f in held:
                assert n in index._locations.get(f, set())
        assert set(index._order) == set(index._locations)
