"""Tests for best-effort intermediate replication (min_replicas)."""

import dataclasses

import pytest

from repro.core.config import SchedulerConfig
from repro.core.manager import TaskVineManager
from repro.sim.cluster import NodeSpec

from .conftest import TEST_CONFIG, Env, make_env, map_reduce_workflow

REPLICATED = dataclasses.replace(TEST_CONFIG, min_replicas=2)


class TestReplication:
    def test_outputs_get_second_copies(self):
        env = make_env(n_workers=3)
        wf = map_reduce_workflow(n_proc=6, compute=2.0)
        manager = TaskVineManager(env.sim, env.cluster, env.storage, wf,
                                  config=REPLICATED, trace=env.trace)
        result = manager.run(limit=1e6)
        assert result.completed
        replica_transfers = [t for t in env.trace.transfers
                             if t.kind == "replica"]
        assert replica_transfers, "min_replicas=2 should push copies"

    def test_no_replication_by_default(self):
        env = make_env(n_workers=3)
        wf = map_reduce_workflow(n_proc=6)
        manager = TaskVineManager(env.sim, env.cluster, env.storage, wf,
                                  config=TEST_CONFIG, trace=env.trace)
        manager.run(limit=1e6)
        assert not [t for t in env.trace.transfers
                    if t.kind == "replica"]

    def test_replication_avoids_recompute_on_preemption(self):
        """Kill the producer's worker after replication: the consumer
        stages from the replica instead of re-running the producer."""

        def run(min_replicas):
            env = make_env(n_workers=3, spec=NodeSpec(cores=2))
            # slow producers, so the run is still alive when we strike
            wf = map_reduce_workflow(n_proc=6, compute=8.0)
            config = dataclasses.replace(TEST_CONFIG,
                                         min_replicas=min_replicas)
            manager = TaskVineManager(env.sim, env.cluster,
                                      env.storage, wf, config=config,
                                      trace=env.trace)

            def assassin():
                # wait until some partial exists, then kill its holder
                while True:
                    yield env.sim.timeout(1.0)
                    for i in range(6):
                        holders = [
                            n for n in manager.replicas.locations(
                                f"partial-{i}")
                            if n in manager.agents]
                        if holders:
                            env.cluster.preempt(
                                env.cluster.workers[holders[0]])
                            return

            env.sim.process(assassin())
            result = manager.run(limit=1e6)
            assert result.completed
            ok_proc_runs = len([r for r in env.trace.tasks
                                if r.category == "proc" and r.ok])
            return ok_proc_runs

        # without replication some producers re-run; with replication
        # at least as few (typically fewer) recomputations happen
        assert run(2) <= run(1)

    def test_replicas_are_evictable(self):
        """Replication must never cause disk-overflow failures."""
        env = Env(n_workers=0)
        env.cluster.provision(3, NodeSpec(cores=2, disk=150e6))
        wf = map_reduce_workflow(n_proc=8, chunk=30e6, partial=10e6,
                                 compute=1.0)
        manager = TaskVineManager(env.sim, env.cluster, env.storage, wf,
                                  config=REPLICATED, trace=env.trace)
        result = manager.run(limit=1e6)
        assert result.completed
