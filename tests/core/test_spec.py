"""Unit tests for SimWorkflow validation and structure."""

import pytest

from repro.core.files import FileKind, SimFile, cachename
from repro.core.spec import SimTask, SimWorkflow, WorkflowError


def make_simple():
    files = [
        SimFile("in", 100, FileKind.INPUT),
        SimFile("mid", 10, FileKind.INTERMEDIATE),
        SimFile("out", 1, FileKind.OUTPUT),
    ]
    tasks = [
        SimTask(id="a", compute=1.0, inputs=("in",), outputs=("mid",)),
        SimTask(id="b", compute=1.0, inputs=("mid",), outputs=("out",)),
    ]
    return SimWorkflow(tasks, files)


class TestCachenames:
    def test_stable(self):
        assert cachename("f", 100) == cachename("f", 100)

    def test_size_changes_name(self):
        assert cachename("f", 100) != cachename("f", 101)

    def test_lineage_changes_name(self):
        assert (cachename("f", 100, ["a"])
                != cachename("f", 100, ["b"]))
        assert (cachename("f", 100, [])
                != cachename("f", 100, ["a"]))

    def test_workflow_assigns_all(self):
        wf = make_simple()
        assert set(wf.cachenames) == {"in", "mid", "out"}
        # downstream names incorporate upstream identity
        assert wf.cachenames["out"] != wf.cachenames["mid"]


class TestValidation:
    def test_duplicate_task_rejected(self):
        files = [SimFile("in", 1, FileKind.INPUT)]
        tasks = [SimTask(id="a", compute=1, inputs=("in",)),
                 SimTask(id="a", compute=1, inputs=("in",))]
        with pytest.raises(WorkflowError, match="duplicate task"):
            SimWorkflow(tasks, files)

    def test_duplicate_file_rejected(self):
        with pytest.raises(WorkflowError, match="duplicate file"):
            SimWorkflow([], [SimFile("f", 1, FileKind.INPUT),
                             SimFile("f", 2, FileKind.INPUT)])

    def test_unknown_input_rejected(self):
        with pytest.raises(WorkflowError, match="unknown file"):
            SimWorkflow([SimTask(id="a", compute=1, inputs=("ghost",))],
                        [])

    def test_double_producer_rejected(self):
        files = [SimFile("mid", 1, FileKind.INTERMEDIATE)]
        tasks = [SimTask(id="a", compute=1, outputs=("mid",)),
                 SimTask(id="b", compute=1, outputs=("mid",))]
        with pytest.raises(WorkflowError, match="produced twice"):
            SimWorkflow(tasks, files)

    def test_produced_input_rejected(self):
        files = [SimFile("in", 1, FileKind.INPUT)]
        tasks = [SimTask(id="a", compute=1, outputs=("in",))]
        with pytest.raises(WorkflowError, match="cannot be produced"):
            SimWorkflow(tasks, files)

    def test_orphan_intermediate_rejected(self):
        with pytest.raises(WorkflowError, match="no producer"):
            SimWorkflow([], [SimFile("mid", 1, FileKind.INTERMEDIATE)])

    def test_cycle_rejected(self):
        files = [SimFile("x", 1, FileKind.INTERMEDIATE),
                 SimFile("y", 1, FileKind.INTERMEDIATE)]
        tasks = [SimTask(id="a", compute=1, inputs=("y",), outputs=("x",)),
                 SimTask(id="b", compute=1, inputs=("x",), outputs=("y",))]
        with pytest.raises(WorkflowError, match="cycle"):
            SimWorkflow(tasks, files)

    def test_negative_compute_rejected(self):
        with pytest.raises(ValueError):
            SimTask(id="a", compute=-1)

    def test_negative_file_size_rejected(self):
        with pytest.raises(ValueError):
            SimFile("f", -5)

    def test_bad_file_kind_rejected(self):
        with pytest.raises(ValueError):
            SimFile("f", 5, "magic")


class TestStructure:
    def test_dependencies(self):
        wf = make_simple()
        assert wf.task_dependencies("a") == set()
        assert wf.task_dependencies("b") == {"a"}

    def test_dependents(self):
        wf = make_simple()
        assert wf.task_dependents() == {"a": {"b"}, "b": set()}

    def test_initial_ready(self):
        wf = make_simple()
        assert wf.initial_ready() == ["a"]

    def test_final_files(self):
        wf = make_simple()
        assert wf.final_files() == ["out"]

    def test_byte_totals(self):
        wf = make_simple()
        assert wf.total_input_bytes() == 100
        assert wf.total_intermediate_bytes() == 10

    def test_categories(self):
        wf = make_simple()
        assert wf.categories() == {"proc"}

    def test_len(self):
        assert len(make_simple()) == 2
