"""Tests for pluggable placement policies and dynamic workers."""

import pytest

from repro.core.cache import ReplicaMap
from repro.core.manager import TaskVineManager
from repro.core.scheduling import (
    LocalityPolicy,
    PackPolicy,
    RandomPolicy,
    RoundRobinPolicy,
    SpreadPolicy,
    make_policy,
)
from repro.core.spec import SimTask
from repro.core.worker import WorkerAgent
from repro.sim.cluster import NodeSpec, WorkerNode
from repro.sim.engine import Simulation
from repro.sim.storage import MB
from repro.sim.trace import TraceRecorder

from .conftest import TEST_CONFIG, Env, make_env, map_reduce_workflow


def make_agents(n, cores=2, busy=None):
    sim = Simulation()
    trace = TraceRecorder()
    agents = []
    for i in range(1, n + 1):
        agent = WorkerAgent(sim, WorkerNode(sim, i, NodeSpec(cores=cores)),
                            trace)
        for j in range((busy or {}).get(i, 0)):
            agent.assign(f"task-{i}-{j}")
        agents.append(agent)
    return agents


TASK = SimTask(id="t", compute=1.0, inputs=("f",))


class TestPolicies:
    def test_factory(self):
        assert isinstance(make_policy("locality"), LocalityPolicy)
        assert isinstance(make_policy("random", seed=1), RandomPolicy)
        with pytest.raises(ValueError):
            make_policy("astrology")

    def test_all_return_none_on_empty(self):
        for name in ("locality", "round-robin", "random", "pack",
                     "spread"):
            policy = make_policy(name)
            assert policy.choose(TASK, [], ReplicaMap(), {}) is None

    def test_round_robin_rotates(self):
        agents = make_agents(3)
        policy = RoundRobinPolicy()
        picks = [policy.choose(TASK, agents, ReplicaMap(), {}).node_id
                 for _ in range(6)]
        assert picks == [1, 2, 3, 1, 2, 3]

    def test_random_deterministic_by_seed(self):
        agents = make_agents(5)
        a = [RandomPolicy(seed=3).choose(TASK, agents, ReplicaMap(),
                                         {}).node_id for _ in range(1)]
        b = [RandomPolicy(seed=3).choose(TASK, agents, ReplicaMap(),
                                         {}).node_id for _ in range(1)]
        assert a == b

    def test_pack_prefers_busiest(self):
        agents = make_agents(3, cores=4, busy={2: 3, 1: 1})
        policy = PackPolicy()
        assert policy.choose(TASK, agents, ReplicaMap(), {}).node_id == 2

    def test_spread_prefers_idlest(self):
        agents = make_agents(3, cores=4, busy={2: 3, 1: 1})
        policy = SpreadPolicy()
        assert policy.choose(TASK, agents, ReplicaMap(), {}).node_id == 3

    def test_locality_follows_data(self):
        agents = make_agents(3)
        replicas = ReplicaMap()
        replicas.add("f", 2)
        agents[1].reserve("f", 10 * MB)
        policy = LocalityPolicy()
        chosen = policy.choose(TASK, agents, replicas,
                               {"f": 10 * MB})
        assert chosen.node_id == 2

    def test_locality_falls_back(self):
        agents = make_agents(3)
        policy = LocalityPolicy(fallback=RoundRobinPolicy())
        chosen = policy.choose(TASK, agents, ReplicaMap(),
                               {"f": 10 * MB})
        assert chosen.node_id == 1


class TestPolicyInjection:
    @pytest.mark.parametrize("name", ["round-robin", "random", "pack",
                                      "spread", "locality"])
    def test_manager_completes_with_any_policy(self, name):
        env = make_env(n_workers=3)
        wf = map_reduce_workflow(n_proc=8)
        manager = TaskVineManager(env.sim, env.cluster, env.storage, wf,
                                  config=TEST_CONFIG, trace=env.trace,
                                  policy=make_policy(name))
        result = manager.run(limit=1e6)
        assert result.completed
        assert result.tasks_done == 9

    def test_spread_uses_more_workers_than_pack(self):
        def workers_used(policy_name):
            env = make_env(n_workers=4, spec=NodeSpec(cores=8))
            wf = map_reduce_workflow(n_proc=8, compute=5.0)
            manager = TaskVineManager(
                env.sim, env.cluster, env.storage, wf,
                config=TEST_CONFIG, trace=env.trace,
                policy=make_policy(policy_name))
            manager.run(limit=1e6)
            return len(env.trace.gantt())

        assert workers_used("spread") > workers_used("pack")


class TestDynamicWorkers:
    def test_workers_joining_mid_run_take_work(self):
        env = Env(n_workers=1, spec=NodeSpec(cores=1))
        wf = map_reduce_workflow(n_proc=12, compute=5.0)
        manager = TaskVineManager(env.sim, env.cluster, env.storage, wf,
                                  config=TEST_CONFIG, trace=env.trace)

        def reinforcements():
            yield env.sim.timeout(6.0)
            env.cluster.provision(3, NodeSpec(cores=1))

        env.sim.process(reinforcements())
        result = manager.run(limit=1e6)
        assert result.completed
        used = env.trace.gantt()
        assert len(used) == 4, "late workers must receive tasks"
        # nothing ran on a late worker before it joined
        for node_id, intervals in used.items():
            if node_id != 1:
                assert intervals[0][0] >= 6.0

    def test_join_speeds_up_run(self):
        def run(reinforce):
            env = Env(n_workers=1, spec=NodeSpec(cores=1))
            wf = map_reduce_workflow(n_proc=12, compute=5.0)
            manager = TaskVineManager(env.sim, env.cluster, env.storage,
                                      wf, config=TEST_CONFIG,
                                      trace=env.trace)
            if reinforce:
                def late():
                    yield env.sim.timeout(6.0)
                    env.cluster.provision(3, NodeSpec(cores=1))

                env.sim.process(late())
            return manager.run(limit=1e6).makespan

        assert run(True) < run(False)

    def test_startup_delay_workers_join_when_ready(self):
        env = Env(n_workers=0)
        env.cluster.worker_startup_delay = 5.0
        env.cluster.provision(2, NodeSpec(cores=2))
        wf = map_reduce_workflow(n_proc=4, compute=1.0)
        manager = TaskVineManager(env.sim, env.cluster, env.storage, wf,
                                  config=TEST_CONFIG, trace=env.trace)
        result = manager.run(limit=1e6)
        assert result.completed
        # no task could start before any worker booted
        assert min(r.t_start for r in env.trace.tasks) > 0.0
