"""Trace ids are content-defined, not process-salted.

``TaskRecord.task_id`` used to be ``hash(task.id) & 0x7FFFFFFF``:
stable within one process, different across processes (PYTHONHASHSEED),
so traces from two runs could never be lined up and golden captures
were impossible.  ``stable_trace_id`` is CRC32 of the string id --
these pinned values must never change.
"""

from repro.core.manager import TaskVineManager, stable_trace_id

from tests.core.conftest import TEST_CONFIG, Env, map_reduce_workflow

# Pinned against zlib.crc32 -- a change here breaks every stored
# golden capture and cross-process trace join.
PINNED = {
    "proc-0": 383117218,
    "proc-1": 1641207604,
    "accum": 1614353442,
    "dv3-large/proc-00001": 1302365919,
    "t0.0/proc-3": 93996583,
}


def test_stable_trace_id_pinned_values():
    for task_id, expected in PINNED.items():
        assert stable_trace_id(task_id) == expected


def test_stable_trace_id_is_31_bit():
    for task_id in PINNED:
        assert 0 <= stable_trace_id(task_id) <= 0x7FFFFFFF


def test_run_records_carry_stable_ids():
    env = Env(n_workers=2)
    workflow = map_reduce_workflow(n_proc=4)
    manager = TaskVineManager(env.sim, env.cluster, env.storage,
                              workflow, config=TEST_CONFIG)
    result = manager.run()
    assert result.completed
    recorded = {rec.task_id for rec in env.trace.tasks}
    assert recorded == {stable_trace_id(t) for t in workflow.tasks}
