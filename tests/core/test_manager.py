"""Integration tests for the TaskVine manager on small clusters."""

import pytest

from repro.core.config import (
    TASK_MODE_FUNCTIONS,
    TASK_MODE_TASKS,
    SchedulerConfig,
)
from repro.core.files import FileKind, SimFile
from repro.core.manager import MANAGER_NODE, TaskVineManager
from repro.core.spec import SimTask, SimWorkflow
from repro.sim.cluster import NodeSpec
from repro.sim.storage import GB, MB

from .conftest import TEST_CONFIG, Env, make_env, map_reduce_workflow


def run_taskvine(env, workflow, config=TEST_CONFIG, limit=1e6):
    manager = TaskVineManager(env.sim, env.cluster, env.storage,
                              workflow, config=config, trace=env.trace)
    return manager.run(limit=limit), manager


class TestBasicExecution:
    def test_single_task_completes(self, env):
        wf = map_reduce_workflow(n_proc=1)
        result, _ = run_taskvine(env, wf)
        assert result.completed
        assert result.tasks_done == 2  # proc + accum
        assert result.makespan > 0

    def test_map_reduce_completes(self, env):
        wf = map_reduce_workflow(n_proc=8, compute=2.0)
        result, _ = run_taskvine(env, wf)
        assert result.completed
        assert result.tasks_done == 9
        assert result.task_failures == 0

    def test_tasks_respect_dependencies(self, env):
        wf = map_reduce_workflow(n_proc=4)
        result, _ = run_taskvine(env, wf)
        records = {r.category: [] for r in env.trace.tasks}
        for r in env.trace.tasks:
            records[r.category].append(r)
        accum = records["accum"][0]
        for proc in records["proc"]:
            assert proc.t_end <= accum.t_start

    def test_parallelism_speeds_up(self):
        wf = map_reduce_workflow(n_proc=12, compute=5.0)
        few = make_env(n_workers=1, spec=NodeSpec(cores=2))
        many = make_env(n_workers=6, spec=NodeSpec(cores=2))
        slow, _ = run_taskvine(few, wf)
        wf2 = map_reduce_workflow(n_proc=12, compute=5.0)
        fast, _ = run_taskvine(many, wf2)
        assert slow.completed and fast.completed
        assert fast.makespan < slow.makespan / 2

    def test_final_result_fetched_to_manager(self, env):
        wf = map_reduce_workflow(n_proc=3)
        result, manager = run_taskvine(env, wf)
        assert MANAGER_NODE in manager.replicas.locations("result")

    def test_no_workers_rejected(self):
        env = Env(n_workers=0)
        wf = map_reduce_workflow(n_proc=1)
        from repro.core.manager import SchedulerError
        with pytest.raises(SchedulerError):
            run_taskvine(env, wf)

    def test_determinism(self):
        def once():
            env = make_env(n_workers=3, seed=5)
            wf = map_reduce_workflow(n_proc=10, compute=3.0)
            result, _ = run_taskvine(env, wf)
            return result.makespan, result.tasks_done

        assert once() == once()


class TestDataManagement:
    def test_intermediates_not_routed_through_manager(self, env):
        wf = map_reduce_workflow(n_proc=6)
        result, _ = run_taskvine(env, wf)
        assert result.completed
        # only the final result flows to the manager
        to_manager = [t for t in env.trace.transfers
                      if t.dst == MANAGER_NODE]
        assert all(t.kind == "result" for t in to_manager)
        assert sum(t.nbytes for t in to_manager) == 10 * MB

    def test_peer_transfers_used_for_remote_inputs(self):
        # 6 proc tasks spread over 3 single-core workers; the reduction
        # runs on one of them and pulls the other partials via peers.
        env = make_env(n_workers=3, spec=NodeSpec(cores=1))
        wf = map_reduce_workflow(n_proc=6, compute=1.0)
        result, _ = run_taskvine(env, wf)
        assert result.completed
        peers = [t for t in env.trace.transfers if t.kind == "peer"]
        assert peers, "reduction inputs should move worker-to-worker"
        assert all(t.src != MANAGER_NODE and t.dst != MANAGER_NODE
                   for t in peers)

    def test_locality_avoids_transfers_single_worker(self):
        env = make_env(n_workers=1, spec=NodeSpec(cores=4))
        wf = map_reduce_workflow(n_proc=5)
        result, _ = run_taskvine(env, wf)
        assert result.completed
        assert not [t for t in env.trace.transfers if t.kind == "peer"]

    def test_input_files_read_from_shared_fs(self, env):
        wf = map_reduce_workflow(n_proc=4, chunk=200 * MB)
        run_taskvine(env, wf)
        assert env.storage.bytes_read == pytest.approx(4 * 200 * MB)

    def test_cached_input_not_refetched(self):
        # two tasks share one input chunk on a single worker
        files = [SimFile("shared", 100 * MB, FileKind.INPUT),
                 SimFile("o1", MB, FileKind.INTERMEDIATE),
                 SimFile("o2", MB, FileKind.INTERMEDIATE)]
        tasks = [SimTask(id="t1", compute=1, inputs=("shared",),
                         outputs=("o1",)),
                 SimTask(id="t2", compute=1, inputs=("shared",),
                         outputs=("o2",))]
        wf = SimWorkflow(tasks, files)
        env = make_env(n_workers=1)
        result, _ = run_taskvine(env, wf)
        assert result.completed
        assert env.storage.bytes_read == pytest.approx(100 * MB)

    def test_worker_cache_traced(self, env):
        wf = map_reduce_workflow(n_proc=4)
        run_taskvine(env, wf)
        assert env.trace.cache_deltas
        peaks = env.trace.peak_cache()
        assert max(peaks.values()) > 0


class TestExecutionModes:
    def test_function_calls_faster_than_tasks(self):
        config_tasks = SchedulerConfig(
            mode=TASK_MODE_TASKS, dispatch_overhead=0.02,
            collect_overhead=0.01, task_startup=1.0, import_cost=1.0)
        config_fns = SchedulerConfig(
            mode=TASK_MODE_FUNCTIONS, dispatch_overhead=0.004,
            collect_overhead=0.002, function_call_overhead=0.02,
            library_startup=1.0, import_cost=1.0)
        wf1 = map_reduce_workflow(n_proc=30, compute=0.5)
        env1 = make_env(n_workers=4)
        slow, _ = run_taskvine(env1, wf1, config=config_tasks)
        wf2 = map_reduce_workflow(n_proc=30, compute=0.5)
        env2 = make_env(n_workers=4)
        fast, _ = run_taskvine(env2, wf2, config=config_fns)
        assert slow.completed and fast.completed
        assert fast.makespan < slow.makespan

    def test_library_startup_paid_once_per_worker(self):
        config = SchedulerConfig(
            mode=TASK_MODE_FUNCTIONS, dispatch_overhead=0.0001,
            collect_overhead=0.0001, function_call_overhead=0.001,
            library_startup=5.0, import_cost=1.0, hoisting=True)
        env = make_env(n_workers=1, spec=NodeSpec(cores=1))
        wf = map_reduce_workflow(n_proc=4, compute=0.1, chunk=MB)
        result, _ = run_taskvine(env, wf, config=config)
        assert result.completed
        # 5 tasks at 0.1s-ish each plus ONE 6s library start: well under
        # what per-task library startup (5 x 6s) would cost.
        assert result.makespan < 13.0
        assert result.makespan > 6.0

    def test_hoisting_reduces_per_call_cost(self):
        base = dict(mode=TASK_MODE_FUNCTIONS, dispatch_overhead=0.0001,
                    collect_overhead=0.0001, function_call_overhead=0.001,
                    library_startup=0.5, import_cost=2.0)
        wf1 = map_reduce_workflow(n_proc=10, compute=0.1, chunk=MB)
        env1 = make_env(n_workers=1, spec=NodeSpec(cores=1))
        hoisted, _ = run_taskvine(
            env1, wf1, config=SchedulerConfig(hoisting=True, **base))
        wf2 = map_reduce_workflow(n_proc=10, compute=0.1, chunk=MB)
        env2 = make_env(n_workers=1, spec=NodeSpec(cores=1))
        unhoisted, _ = run_taskvine(
            env2, wf2, config=SchedulerConfig(hoisting=False, **base))
        assert hoisted.completed and unhoisted.completed
        # 11 tasks x 2s import difference, minus the one hoisted import
        assert unhoisted.makespan - hoisted.makespan > 15.0

    def test_task_mode_exec_times_include_startup(self):
        config = SchedulerConfig(
            mode=TASK_MODE_TASKS, dispatch_overhead=0.001,
            collect_overhead=0.001, task_startup=1.0, import_cost=1.0)
        env = make_env(n_workers=2)
        wf = map_reduce_workflow(n_proc=6, compute=1.0)
        run_taskvine(env, wf, config=config)
        durations = env.trace.task_durations("proc")
        assert (durations > 1.0).all()  # startup included


class TestFailureRecovery:
    def test_preemption_recovers(self):
        env = make_env(n_workers=4, seed=3)
        wf = map_reduce_workflow(n_proc=20, compute=5.0)
        manager = TaskVineManager(env.sim, env.cluster, env.storage, wf,
                                  config=TEST_CONFIG, trace=env.trace)
        victim = env.cluster.workers[2]

        def assassin():
            yield env.sim.timeout(2.5)  # mid-run: tasks take ~5 s
            env.cluster.preempt(victim)

        env.sim.process(assassin())
        result = manager.run(limit=1e6)
        assert result.completed
        assert result.tasks_done == 21
        assert len(env.trace.failures()) == 1
        # the preempted worker's tasks were retried and the run finished
        failed_records = [r for r in env.trace.tasks if not r.ok]
        assert failed_records
        assert all(r.worker == victim.node_id for r in failed_records)

    def test_lost_intermediate_reproduced(self):
        """Kill the worker holding a partial AFTER its producer ran but
        BEFORE the consumer starts: lineage recovery must re-run it."""
        env = make_env(n_workers=2, spec=NodeSpec(cores=1))
        files = [SimFile("in", MB, FileKind.INPUT),
                 SimFile("mid", MB, FileKind.INTERMEDIATE),
                 SimFile("slow", MB, FileKind.INTERMEDIATE),
                 SimFile("out", MB, FileKind.OUTPUT)]
        tasks = [
            SimTask(id="fast", compute=1.0, inputs=("in",),
                    outputs=("mid",)),
            SimTask(id="slowtask", compute=30.0, inputs=("in",),
                    outputs=("slow",)),
            SimTask(id="join", compute=1.0, inputs=("mid", "slow"),
                    outputs=("out",)),
        ]
        wf = SimWorkflow(tasks, files)
        manager = TaskVineManager(env.sim, env.cluster, env.storage, wf,
                                  config=TEST_CONFIG, trace=env.trace)

        def assassin():
            # wait until "mid" exists, then kill its holder
            while True:
                yield env.sim.timeout(0.5)
                holders = [n for n in manager.replicas.locations("mid")
                           if n in manager.agents]
                if holders:
                    env.cluster.preempt(
                        env.cluster.workers[holders[0]])
                    return

        env.sim.process(assassin())
        result = manager.run(limit=1e6)
        assert result.completed
        # "fast" ran at least twice (original + recovery)
        fast_runs = [r for r in env.trace.tasks if r.category == "proc"]
        assert len(fast_runs) >= 3

    def test_repeated_failures_abort(self):
        env = make_env(n_workers=1)
        wf = map_reduce_workflow(n_proc=1, compute=1e5)
        config = SchedulerConfig(
            dispatch_overhead=0.001, collect_overhead=0.001,
            max_task_retries=1)
        manager = TaskVineManager(env.sim, env.cluster, env.storage, wf,
                                  config=config, trace=env.trace)

        def serial_killer():
            while True:
                yield env.sim.timeout(10.0)
                workers = env.cluster.alive_workers()
                if not workers:
                    return
                env.cluster.preempt(workers[0])

        env.sim.process(serial_killer())
        result = manager.run(limit=1e6)
        assert not result.completed
        assert result.error

    def test_disk_overflow_fails_worker_and_recovers(self):
        # one tiny-disk worker plus one large-disk worker: tasks landing
        # on the tiny worker overflow; the run must still complete.
        env = Env(n_workers=0)
        env.cluster.provision(1, NodeSpec(cores=2, disk=50 * MB))
        env.cluster.provision(1, NodeSpec(cores=2, disk=100 * GB))
        wf = map_reduce_workflow(n_proc=4, chunk=40 * MB,
                                 partial=30 * MB, compute=1.0)
        manager = TaskVineManager(env.sim, env.cluster, env.storage, wf,
                                  config=TEST_CONFIG, trace=env.trace)
        result = manager.run(limit=1e6)
        assert result.completed
        overflow_events = [e for e in env.trace.worker_events
                           if e.kind == "preempt"]
        assert overflow_events, "tiny worker should have overflowed"
