"""Byte-identity against the stored golden transaction log.

The pinned fig7-style run (tests/golden/runner.py) must write a txlog
byte-identical to the capture checked into tests/golden/.  This is the
acceptance gate for kernel/scheduler performance work: an optimisation
may only change *how fast* the simulator reaches each decision, never
which decision it reaches, in what order, or with what timestamps.

If this fails after an intentional trace-changing feature, regenerate
with ``PYTHONPATH=src python -m tests.golden.capture`` and say so in
the commit message.  If it fails after a performance change, the
change is wrong.
"""

import difflib
import gzip

from tests.golden.capture import GOLDEN_PATH
from tests.golden.runner import golden_run


def test_txlog_matches_golden_capture(tmp_path):
    fresh_path = tmp_path / "fresh.jsonl"
    result = golden_run(str(fresh_path))
    assert result.completed
    fresh = fresh_path.read_bytes()
    with gzip.open(GOLDEN_PATH, "rb") as fh:
        golden = fh.read()
    if fresh != golden:
        fresh_lines = fresh.decode().splitlines()
        golden_lines = golden.decode().splitlines()
        diff = list(difflib.unified_diff(
            golden_lines, fresh_lines, fromfile="golden",
            tofile="fresh", lineterm="", n=1))
        raise AssertionError(
            "txlog diverged from the golden capture "
            f"({len(golden_lines)} golden lines, "
            f"{len(fresh_lines)} fresh); first differences:\n"
            + "\n".join(diff[:40]))
