"""Tests for multi-core task resource accounting."""

import pytest

from repro.core.files import FileKind, SimFile
from repro.core.manager import TaskVineManager
from repro.core.spec import SimTask, SimWorkflow
from repro.sim.cluster import NodeSpec

from .conftest import TEST_CONFIG, Env, make_env

MB = 1e6


def multicore_workflow(n_tasks=4, cores=4, compute=10.0):
    files = []
    tasks = []
    for i in range(n_tasks):
        files.append(SimFile(f"in-{i}", MB, FileKind.INPUT))
        files.append(SimFile(f"out-{i}", MB, FileKind.OUTPUT))
        tasks.append(SimTask(id=f"t-{i}", compute=compute,
                             inputs=(f"in-{i}",), outputs=(f"out-{i}",),
                             cores=cores))
    return SimWorkflow(tasks, files)


class TestMulticoreTasks:
    def test_cores_validated(self):
        with pytest.raises(ValueError):
            SimTask(id="bad", compute=1.0, cores=0)

    def test_big_tasks_serialise_on_small_worker(self):
        """Two 4-core tasks on one 4-core worker cannot overlap."""
        env = make_env(n_workers=1, spec=NodeSpec(cores=4))
        wf = multicore_workflow(n_tasks=2, cores=4, compute=10.0)
        manager = TaskVineManager(env.sim, env.cluster, env.storage, wf,
                                  config=TEST_CONFIG, trace=env.trace)
        result = manager.run(limit=1e6)
        assert result.completed
        intervals = sorted(
            (r.t_start, r.t_end) for r in env.trace.tasks)
        assert intervals[1][0] >= intervals[0][1] - 1e-9

    def test_mixed_core_counts_pack_correctly(self):
        """A 3-core task and a 1-core task share a 4-core worker; a
        second 3-core task must wait."""
        env = make_env(n_workers=1, spec=NodeSpec(cores=4))
        files = [SimFile("in", MB, FileKind.INPUT),
                 SimFile("a", MB, FileKind.OUTPUT),
                 SimFile("b", MB, FileKind.OUTPUT),
                 SimFile("c", MB, FileKind.OUTPUT)]
        tasks = [
            SimTask(id="big-1", compute=10.0, inputs=("in",),
                    outputs=("a",), cores=3),
            SimTask(id="small", compute=10.0, inputs=("in",),
                    outputs=("b",), cores=1),
            SimTask(id="big-2", compute=10.0, inputs=("in",),
                    outputs=("c",), cores=3),
        ]
        wf = SimWorkflow(tasks, files)
        manager = TaskVineManager(env.sim, env.cluster, env.storage, wf,
                                  config=TEST_CONFIG, trace=env.trace)
        result = manager.run(limit=1e6)
        assert result.completed
        # peak concurrent tasks is 2 (3+1 cores), never 3
        _, levels = env.trace.concurrency_series()
        assert levels.max() == 2

    def test_multicore_spreads_across_workers(self):
        env = make_env(n_workers=4, spec=NodeSpec(cores=4))
        wf = multicore_workflow(n_tasks=4, cores=4, compute=10.0)
        manager = TaskVineManager(env.sim, env.cluster, env.storage, wf,
                                  config=TEST_CONFIG, trace=env.trace)
        result = manager.run(limit=1e6)
        assert result.completed
        # all four run in parallel, one per worker
        assert len(env.trace.gantt()) == 4
        assert result.makespan < 15.0

    def test_oversized_task_never_dispatches(self):
        """A task needing more cores than any worker has stalls the
        run (head-of-line), surfacing as a simulated-time limit."""
        env = make_env(n_workers=2, spec=NodeSpec(cores=2))
        wf = multicore_workflow(n_tasks=1, cores=8)
        manager = TaskVineManager(env.sim, env.cluster, env.storage, wf,
                                  config=TEST_CONFIG, trace=env.trace)
        result = manager.run(limit=100.0)
        assert not result.completed
