"""Shared scheduler-test harness: tiny clusters and workflows."""

import pytest

from repro.core.config import SchedulerConfig
from repro.core.files import FileKind, SimFile
from repro.core.spec import SimTask, SimWorkflow
from repro.sim.cluster import Cluster, NodeSpec
from repro.sim.engine import Simulation
from repro.sim.network import Network
from repro.sim.rng import RngRegistry
from repro.sim.storage import GB, MB, SharedFilesystem, StorageProfile
from repro.sim.trace import TraceRecorder

FAST_FS = StorageProfile(name="fastfs", metadata_latency=0.001,
                         per_stream_bw=1 * GB, aggregate_bw=20 * GB,
                         capacity=1e15)

#: low-overhead config so tiny tests run in tiny simulated time
TEST_CONFIG = SchedulerConfig(
    dispatch_overhead=0.001, collect_overhead=0.001,
    task_startup=0.1, import_cost=0.05,
    function_call_overhead=0.005, library_startup=0.2,
)


class Env:
    """One simulated cluster + storage, ready for a scheduler."""

    def __init__(self, n_workers=2, spec=None, seed=1,
                 preemption_rate=0.0, manager_nic=1.25 * GB,
                 fs_profile=FAST_FS):
        self.sim = Simulation()
        self.trace = TraceRecorder()
        self.network = Network(self.sim, self.trace, latency=0.0001)
        self.cluster = Cluster(self.sim, self.network, self.trace,
                               RngRegistry(seed),
                               manager_nic_bw=manager_nic,
                               preemption_rate=preemption_rate)
        self.storage = SharedFilesystem(self.sim, self.network,
                                        fs_profile, trace=self.trace)
        self.cluster.provision(n_workers, spec or NodeSpec())


@pytest.fixture
def env():
    return Env()


def make_env(**kwargs) -> Env:
    return Env(**kwargs)


def map_reduce_workflow(n_proc=6, chunk=100 * MB, partial=10 * MB,
                        compute=2.0, arity=None) -> SimWorkflow:
    """n_proc processing tasks -> one (flat or tree) reduction."""
    files = []
    tasks = []
    partials = []
    for i in range(n_proc):
        files.append(SimFile(f"chunk-{i}", chunk, FileKind.INPUT))
        files.append(SimFile(f"partial-{i}", partial,
                             FileKind.INTERMEDIATE))
        tasks.append(SimTask(id=f"proc-{i}", compute=compute,
                             inputs=(f"chunk-{i}",),
                             outputs=(f"partial-{i}",),
                             category="proc", function="process"))
        partials.append(f"partial-{i}")
    files.append(SimFile("result", partial, FileKind.OUTPUT))
    tasks.append(SimTask(id="accum", compute=1.0,
                         inputs=tuple(partials), outputs=("result",),
                         category="accum", function="accumulate"))
    return SimWorkflow(tasks, files)
