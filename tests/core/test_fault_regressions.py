"""Regression tests for fault paths hardened for the chaos subsystem.

Each test replays a failure found by fault injection:

* a replication source preempted at the initiation instant crashed the
  replicate process with an unhandled ``SimulationError``;
* a Work Queue manager-stage owner preempted mid-read left sibling
  waiters parked on an event that never fired (deadlock);
* a peer-transfer *source* preempted mid-flow must fail the in-flight
  flow and trigger recovery on the receiver, not strand it.
"""

import dataclasses

from repro.core.config import SchedulerConfig
from repro.core.files import FileKind, SimFile
from repro.core.manager import TaskVineManager, UnrecoverableError
from repro.core.spec import SimTask, SimWorkflow
from repro.sim.cluster import NodeSpec
from repro.sim.storage import GB, MB
from repro.workqueue.manager import WorkQueueManager

from .conftest import TEST_CONFIG, Env, map_reduce_workflow


class TestReplicationSourceLoss:
    def test_source_preempted_at_replication_start(self):
        """min_replicas forces background replication; killing the
        first worker that holds any cached file races the preemption
        against replication initiation.  The run must recover, not die
        on an unhandled transfer error."""
        env = Env(n_workers=3)
        workflow = map_reduce_workflow(n_proc=4, compute=1.0)
        config = dataclasses.replace(TEST_CONFIG, min_replicas=3)
        manager = TaskVineManager(env.sim, env.cluster, env.storage,
                                  workflow, config=config,
                                  trace=env.trace)

        def killer():
            while True:
                yield env.sim.timeout(0.01)
                for agent in list(manager.agents.values()):
                    if any(agent.cache) and agent.alive:
                        env.cluster.preempt(agent.node)
                        return

        env.sim.process(killer())
        result = manager.run(limit=1e5)
        assert result.completed, result.error


class TestWorkQueueManagerStaging:
    def test_stage_owner_preempted_wakes_waiting_sibling(self):
        """Two single-core workers both need chunk-0 via the manager.
        Killing the worker whose task owns the in-flight stage must
        hand the stage to the waiter, not strand it."""
        env = Env(n_workers=2, spec=NodeSpec(cores=1))
        files = [SimFile("chunk-0", 2 * GB, FileKind.INPUT),
                 SimFile("out-a", MB, FileKind.OUTPUT),
                 SimFile("out-b", MB, FileKind.OUTPUT)]
        tasks = [SimTask(id="a", compute=0.5, inputs=("chunk-0",),
                         outputs=("out-a",)),
                 SimTask(id="b", compute=0.5, inputs=("chunk-0",),
                         outputs=("out-b",))]
        workflow = SimWorkflow(tasks, files)
        config = dataclasses.replace(
            TEST_CONFIG, inputs_via_manager=True,
            results_to_manager=True, peer_transfers=False,
            locality_scheduling=False)
        manager = WorkQueueManager(env.sim, env.cluster, env.storage,
                                   workflow, config=config,
                                   trace=env.trace)

        def killer():
            yield env.sim.timeout(0.05)
            for task_id in list(manager.task_procs):
                agent = next(
                    (a for a in manager.agents.values()
                     if task_id in a.assigned), None)
                if (agent is not None and agent.alive
                        and manager._manager_inflight):
                    env.cluster.preempt(agent.node)
                    return

        env.sim.process(killer())
        result = manager.run(limit=1e5)
        assert result.completed, result.error


class TestPeerSourceMidFlow:
    def test_peer_source_preempted_mid_transfer_recovers(self):
        """Two single-core workers; the merge task must pull a 4 GB
        partial from its peer.  Killing the peer while that flow is in
        flight must fail the flow and re-route (lineage recovery or an
        alternate source) -- the receiver must not wait forever."""
        env = Env(n_workers=2, spec=NodeSpec(cores=1))
        files = [SimFile("c0", 10 * MB, FileKind.INPUT),
                 SimFile("c1", 10 * MB, FileKind.INPUT),
                 SimFile("pa", 4 * GB, FileKind.INTERMEDIATE),
                 SimFile("pb", 4 * GB, FileKind.INTERMEDIATE),
                 SimFile("result", MB, FileKind.OUTPUT)]
        tasks = [SimTask(id="pa-t", compute=1.0, inputs=("c0",),
                         outputs=("pa",)),
                 SimTask(id="pb-t", compute=3.0, inputs=("c1",),
                         outputs=("pb",)),
                 SimTask(id="m", compute=0.5, inputs=("pa", "pb"),
                         outputs=("result",), category="accum")]
        workflow = SimWorkflow(tasks, files)
        manager = TaskVineManager(env.sim, env.cluster, env.storage,
                                  workflow, config=TEST_CONFIG,
                                  trace=env.trace)

        killed = []

        def killer():
            while True:
                yield env.sim.timeout(0.02)
                for flow in list(env.cluster.network.active_flows):
                    if flow.kind == "peer":
                        source = env.cluster.workers.get(flow.src.node)
                        if source is not None and source.alive:
                            killed.append(source.node_id)
                            env.cluster.preempt(source)
                            return

        env.sim.process(killer())
        result = manager.run(limit=1e4)
        assert killed, "probe never saw a peer flow"
        assert result.completed, result.error
        assert result.task_failures >= 1  # the receiver's task retried


class TestRaiseForStatus:
    def test_failed_run_raises_typed_error(self):
        env = Env(n_workers=1, spec=NodeSpec(cores=1))
        workflow = map_reduce_workflow(n_proc=2, compute=5.0)
        manager = TaskVineManager(env.sim, env.cluster, env.storage,
                                  workflow, config=TEST_CONFIG,
                                  trace=env.trace)

        def killer():
            yield env.sim.timeout(0.5)
            for node in list(env.cluster.workers.values()):
                if node.alive:
                    env.cluster.preempt(node)

        env.sim.process(killer())
        result = manager.run(limit=1e4)
        assert not result.completed
        try:
            result.raise_for_status()
        except UnrecoverableError as exc:
            assert str(exc)
        else:
            raise AssertionError("raise_for_status did not raise")

    def test_successful_run_is_a_no_op(self):
        env = Env(n_workers=2)
        manager = TaskVineManager(env.sim, env.cluster, env.storage,
                                  map_reduce_workflow(n_proc=2),
                                  config=TEST_CONFIG, trace=env.trace)
        result = manager.run(limit=1e5)
        assert result.raise_for_status() is result
