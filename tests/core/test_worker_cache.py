"""Unit tests for WorkerAgent cache and ReplicaMap."""

import pytest

from repro.core.cache import ReplicaMap
from repro.core.worker import WorkerAgent
from repro.sim.cluster import NodeSpec, WorkerNode
from repro.sim.engine import Simulation
from repro.sim.storage import DiskFullError
from repro.sim.trace import TraceRecorder


@pytest.fixture
def agent():
    sim = Simulation()
    node = WorkerNode(sim, 1, NodeSpec(cores=4, disk=100.0))
    return WorkerAgent(sim, node, TraceRecorder())


class TestWorkerCache:
    def test_reserve_and_has(self, agent):
        agent.reserve("f", 40)
        assert agent.has("f")
        assert agent.cached_bytes() == 40
        assert agent.node.disk.used == 40

    def test_reserve_idempotent(self, agent):
        agent.reserve("f", 40)
        agent.reserve("f", 40)
        assert agent.node.disk.used == 40

    def test_eviction_frees_lru(self, agent):
        sim = agent.sim
        agent.reserve("old", 50)
        sim._now = 10.0
        agent.reserve("new", 40)
        sim._now = 20.0
        agent.reserve("big", 60)  # forces eviction of "old"
        assert not agent.has("old")
        assert agent.has("new") and agent.has("big")

    def test_pinned_entries_survive_eviction(self, agent):
        agent.reserve("pinned", 50, pinned=True)
        agent.reserve("loose", 40)
        agent.reserve("big", 45)  # must evict "loose", not "pinned"
        assert agent.has("pinned")
        assert not agent.has("loose")

    def test_retained_entries_survive_eviction(self, agent):
        agent.reserve("kept", 50, retain=True)
        agent.reserve("loose", 40)
        agent.reserve("big", 45)
        assert agent.has("kept")

    def test_overflow_when_everything_protected(self, agent):
        agent.reserve("a", 50, retain=True)
        agent.reserve("b", 40, pinned=True)
        with pytest.raises(DiskFullError):
            agent.reserve("c", 20)

    def test_release_retention_enables_eviction(self, agent):
        agent.reserve("kept", 80, retain=True)
        agent.release_retention("kept")
        agent.reserve("big", 90)  # now evictable
        assert not agent.has("kept")

    def test_unpin_enables_eviction(self, agent):
        agent.reserve("p", 80, pinned=True)
        agent.unpin("p")
        agent.reserve("big", 90)
        assert not agent.has("p")

    def test_evict_callback_fires(self, agent):
        evicted = []
        agent.on_evict = evicted.append
        agent.reserve("a", 80)
        agent.reserve("b", 90)
        assert evicted == ["a"]

    def test_remove_frees_disk(self, agent):
        agent.reserve("f", 70)
        agent.remove("f")
        assert agent.node.disk.used == 0
        assert not agent.has("f")

    def test_locality_bytes(self, agent):
        agent.reserve("a", 30)
        agent.reserve("b", 20)
        sizes = {"a": 30, "b": 20, "c": 99}
        assert agent.locality_bytes(["a", "c"], sizes) == 30
        assert agent.locality_bytes(["a", "b"], sizes) == 50

    def test_free_slots(self, agent):
        assert agent.free_slots() == 4
        agent.assign("t1")
        assert agent.free_slots() == 3
        agent.assign("t2", cores=2)
        assert agent.free_slots() == 1
        agent.unassign("t2")
        assert agent.free_slots() == 3

    def test_clear(self, agent):
        agent.reserve("a", 10)
        agent.reserve("b", 10)
        agent.clear()
        assert agent.cached_bytes() == 0
        assert agent.node.disk.used == 0


class TestReplicaMap:
    def test_add_remove(self):
        replicas = ReplicaMap()
        replicas.add("f", 1)
        replicas.add("f", 2)
        assert replicas.locations("f") == {1, 2}
        replicas.remove("f", 1)
        assert replicas.locations("f") == {2}

    def test_available(self):
        replicas = ReplicaMap()
        assert not replicas.available("f")
        replicas.add("f", 3)
        assert replicas.available("f")

    def test_drop_node_reports_lost(self):
        replicas = ReplicaMap()
        replicas.add("only-here", 1)
        replicas.add("replicated", 1)
        replicas.add("replicated", 2)
        lost = replicas.drop_node(1)
        assert lost == ["only-here"]
        assert replicas.locations("replicated") == {2}

    def test_holders_among(self):
        replicas = ReplicaMap()
        replicas.add("f", 1)
        replicas.add("f", 5)
        assert replicas.holders_among("f", [1, 2, 3]) == [1]

    def test_files_on(self):
        replicas = ReplicaMap()
        replicas.add("a", 1)
        replicas.add("b", 1)
        replicas.add("c", 2)
        assert sorted(replicas.files_on(1)) == ["a", "b"]

    def test_counts(self):
        replicas = ReplicaMap()
        replicas.add("a", 1)
        replicas.add("a", 2)
        assert replicas.replica_count("a") == 2
        assert replicas.replica_count("zzz") == 0
        assert len(replicas) == 1
        assert "a" in replicas
