"""Scorecard accounting over synthetic and live transaction logs."""

import io

import numpy as np
import pytest

from repro.chaos.scorecard import (
    N_BINS,
    compare,
    format_comparison,
    format_scorecard,
    pseudo_histogram,
    score,
)
from repro.core.manager import TaskVineManager
from repro.obs import EventBus, TransactionLog

from tests.core.conftest import TEST_CONFIG, Env, map_reduce_workflow


def records(*rows):
    """Synthetic txlog: RUN header + rows + RUN_END footer."""
    head = {"type": "RUN", "t": 0.0, "schema": 1,
            "scheduler": "taskvine",
            "chaos": {"name": "storm", "seed": 7}}
    foot = {"type": "RUN_END", "t": 10.0, "completed": True,
            "makespan": 10.0, "tasks_done": 3, "task_failures": 1,
            "error": None}
    return [head, *rows, foot]


class TestPseudoHistogram:
    def test_deterministic_shape_and_dtype(self):
        h = pseudo_histogram("proc-0")
        assert h.shape == (N_BINS,)
        assert h.dtype == np.int64
        assert (h == pseudo_histogram("proc-0")).all()

    def test_different_tasks_differ(self):
        assert (pseudo_histogram("proc-0")
                != pseudo_histogram("proc-1")).any()


class TestScore:
    def test_header_and_footer(self):
        card = score(records())
        assert card.scheduler == "taskvine"
        assert card.scenario == "storm"
        assert card.scenario_seed == 7
        assert card.completed
        assert card.makespan == 10.0
        assert card.tasks_done == 3
        assert card.task_failures == 1

    def test_reexecution_counting(self):
        card = score(records(
            {"type": "TASK_DONE", "t": 1.0, "task": "a"},
            {"type": "TASK_DONE", "t": 2.0, "task": "b"},
            {"type": "TASK_DONE", "t": 3.0, "task": "a"},
            {"type": "TASK_DONE", "t": 4.0, "task": "a"},
        ))
        assert card.reexecuted_tasks == 1   # only "a"
        assert card.reexecutions == 2       # two extra acceptances

    def test_recovery_bytes_counts_repeat_stages_only(self):
        stage = {"type": "STAGE_IN", "t": 1.0, "task": "a",
                 "file": "f", "nbytes": 100.0, "source": 3,
                 "cached": False}
        card = score(records(stage, dict(stage, t=2.0),
                             dict(stage, t=3.0, file="g")))
        assert card.recovery_bytes == 100.0  # the one repeat

    def test_cached_hits_do_not_count(self):
        card = score(records(
            {"type": "STAGE_IN", "t": 1.0, "task": "a", "file": "f",
             "nbytes": 100.0, "source": 3, "cached": True},
            {"type": "STAGE_IN", "t": 2.0, "task": "a", "file": "f",
             "nbytes": 100.0, "source": 3, "cached": True}))
        assert card.recovery_bytes == 0.0

    def test_manager_restage_bytes(self):
        card = score(records(
            {"type": "STAGE_IN", "t": 1.0, "task": "a", "file": "f",
             "nbytes": 40.0, "source": 0, "cached": False},
            {"type": "STAGE_IN", "t": 2.0, "task": "b", "file": "g",
             "nbytes": 60.0, "source": 2, "cached": False}))
        assert card.manager_restage_bytes == 40.0

    def test_wasted_exec_seconds(self):
        card = score(records(
            {"type": "EXEC_END", "t": 5.0, "task": 1, "worker": 2,
             "ok": False, "t_start": 2.0, "t_end": 5.0},
            {"type": "EXEC_END", "t": 9.0, "task": 2, "worker": 2,
             "ok": True, "t_start": 5.0, "t_end": 9.0}))
        assert card.wasted_exec_seconds == 3.0

    def test_event_counters(self):
        card = score(records(
            {"type": "RECOVERY", "t": 1.0, "file": "f", "task": "a"},
            {"type": "REPLICA_LOST", "t": 1.0, "file": "f", "node": 2},
            {"type": "WORKER_PREEMPT", "t": 1.0, "worker": 2,
             "kind": "preempt"},
            {"type": "INJECT", "t": 1.0, "kind": "straggler"},
            {"type": "CRASH", "t": 2.0, "scheduler": "x",
             "reason": "boom"}))
        assert (card.recoveries, card.replicas_lost, card.preemptions,
                card.injections, card.crashes) == (1, 1, 1, 1, 1)


class TestHistogramIdentity:
    def test_same_task_set_any_order_is_bin_identical(self):
        a = score(records(
            {"type": "TASK_DONE", "t": 1.0, "task": "x"},
            {"type": "TASK_DONE", "t": 2.0, "task": "y"}))
        b = score(records(
            {"type": "TASK_DONE", "t": 1.0, "task": "y"},
            {"type": "TASK_DONE", "t": 2.0, "task": "x"},
            {"type": "TASK_DONE", "t": 3.0, "task": "x"}))  # re-exec
        assert a.histogram_digest == b.histogram_digest
        assert compare(a, b)["bin_identical"]

    def test_missing_task_breaks_identity(self):
        a = score(records(
            {"type": "TASK_DONE", "t": 1.0, "task": "x"},
            {"type": "TASK_DONE", "t": 2.0, "task": "y"}))
        b = score(records(
            {"type": "TASK_DONE", "t": 1.0, "task": "x"}))
        assert a.histogram_digest != b.histogram_digest
        assert not compare(a, b)["bin_identical"]

    def test_incomplete_run_is_never_bin_identical(self):
        a = score(records({"type": "TASK_DONE", "t": 1.0, "task": "x"}))
        rows = records({"type": "TASK_DONE", "t": 1.0, "task": "x"})
        rows[-1] = dict(rows[-1], completed=False)
        b = score(rows)
        verdict = compare(a, b)
        assert not verdict["bin_identical"]
        assert verdict["added_makespan_s"] == float("inf")


class TestLiveRun:
    def test_scorecard_from_a_real_run(self, tmp_path):
        env = Env(n_workers=2)
        bus = EventBus()
        env.trace.bus = bus
        path = str(tmp_path / "run.jsonl")
        txlog = TransactionLog(path, meta={"scheduler": "taskvine"})
        txlog.attach(bus)
        workflow = map_reduce_workflow(n_proc=4)
        manager = TaskVineManager(env.sim, env.cluster, env.storage,
                                  workflow, config=TEST_CONFIG,
                                  trace=env.trace)
        result = manager.run(limit=1e6)
        txlog.close(completed=result.completed,
                    makespan=result.makespan,
                    tasks_done=result.tasks_done,
                    task_failures=result.task_failures,
                    error=result.error)
        card = score(path)
        assert card.completed
        assert card.tasks_done == len(workflow)
        # every task accepted exactly once in a fault-free run
        assert card.reexecutions == 0
        assert card.histogram.sum() > 0
        assert len(card.histogram_digest) == 64


class TestRendering:
    def test_format_scorecard_mentions_key_metrics(self):
        text = format_scorecard(score(records()))
        assert "reexecuted tasks" in text
        assert "histogram digest" in text

    def test_format_comparison_has_verdict_row(self):
        a = score(records({"type": "TASK_DONE", "t": 1.0, "task": "x"}))
        text = format_comparison(a, [a])
        assert "bin-identical" in text

    def test_to_dict_is_json_friendly(self):
        import json
        blob = json.dumps(score(records()).to_dict())
        assert "histogram" in blob
