"""Scenario declaration, timeline resolution, and scaling."""

import json

import pytest

from repro.chaos.scenario import (
    SCENARIOS,
    Blackout,
    NetworkDegrade,
    PreemptionStorm,
    ReplicaCorruption,
    Scenario,
    StragglerInjection,
    get_scenario,
)


class TestTimeline:
    def test_resolves_relative_times_against_horizon(self):
        s = Scenario("s", (PreemptionStorm(at=0.25),
                           Blackout(at=0.75)))
        timeline = s.timeline(200.0)
        assert [t for t, _ in timeline] == [50.0, 150.0]

    def test_sorted_with_stable_ties(self):
        first = PreemptionStorm(at=0.5, fraction=0.1)
        second = Blackout(at=0.5)
        early = NetworkDegrade(at=0.1)
        s = Scenario("s", (first, second, early))
        timeline = s.timeline(10.0)
        assert [inj for _, inj in timeline] == [early, first, second]

    def test_rejects_nonpositive_horizon(self):
        s = Scenario("s", (PreemptionStorm(),))
        with pytest.raises(ValueError):
            s.timeline(0.0)
        with pytest.raises(ValueError):
            s.timeline(-5.0)


class TestScaled:
    def test_scales_fractions_and_counts(self):
        s = Scenario("s", (PreemptionStorm(fraction=0.2),
                           ReplicaCorruption(count=4),
                           StragglerInjection(count=2, slowdown=4.0)))
        doubled = s.scaled(2.0)
        storm, corrupt, straggle = doubled.injections
        assert storm.fraction == pytest.approx(0.4)
        assert corrupt.count == 8
        assert straggle.count == 4
        assert straggle.slowdown == 4.0  # not an intensity field

    def test_fraction_capped_at_one(self):
        s = Scenario("s", (PreemptionStorm(fraction=0.8),))
        assert s.scaled(5.0).injections[0].fraction == 1.0

    def test_keeps_seed_and_derives_name(self):
        s = Scenario("base", (PreemptionStorm(),), seed=99)
        scaled = s.scaled(1.5)
        assert scaled.seed == 99
        assert scaled.name == "base-x1.5"
        assert s.scaled(2.0, name="custom").name == "custom"

    def test_rejects_negative_intensity(self):
        with pytest.raises(ValueError):
            Scenario("s", ()).scaled(-1.0)


class TestRegistry:
    def test_lookup_is_case_insensitive(self):
        assert get_scenario("SMOKE") is SCENARIOS["smoke"]
        assert get_scenario("Preempt-Storm-20").name == "preempt-storm-20"

    def test_unknown_name_lists_valid_ones(self):
        with pytest.raises(KeyError, match="smoke"):
            get_scenario("nope")

    def test_acceptance_scenarios_present(self):
        storm = get_scenario("preempt-storm-20")
        assert storm.injections[0].fraction == pytest.approx(0.20)
        assert "smoke" in SCENARIOS

    def test_every_scenario_describes_as_json(self):
        for scenario in SCENARIOS.values():
            blob = json.loads(json.dumps(scenario.describe()))
            assert blob["name"] == scenario.name
            assert len(blob["injections"]) == len(scenario.injections)
            for desc in blob["injections"]:
                assert 0.0 <= desc["at"] <= 1.0
                assert desc["kind"]

    def test_describe_carries_kind_and_fields(self):
        desc = PreemptionStorm(at=0.3, fraction=0.5).describe()
        assert desc == {"kind": "preemption-storm", "at": 0.3,
                        "duration": 0.1, "fraction": 0.5}
