"""Injector behaviour, one fault kind at a time, on tiny clusters."""

from dataclasses import dataclass
from types import SimpleNamespace

import pytest

from repro.chaos.inject import Injector, estimate_horizon
from repro.chaos.scenario import (
    Blackout,
    Injection,
    NetworkDegrade,
    NetworkPartition,
    PreemptionStorm,
    ReplicaCorruption,
    Scenario,
    StorageBrownout,
    StragglerInjection,
)
from repro.core.files import FileKind, SimFile
from repro.core.manager import TaskVineManager
from repro.core.spec import SimTask, SimWorkflow
from repro.sim.storage import MB

from tests.core.conftest import TEST_CONFIG, Env, map_reduce_workflow


def staggered_workflow(n_proc=6):
    """Processing tasks of graduated length -> one accumulation, so
    mid-run there are always finished intermediates with a pending
    consumer."""
    files, tasks, partials = [], [], []
    for i in range(n_proc):
        files.append(SimFile(f"chunk-{i}", 20 * MB, FileKind.INPUT))
        files.append(SimFile(f"partial-{i}", 10 * MB,
                             FileKind.INTERMEDIATE))
        tasks.append(SimTask(id=f"proc-{i}", compute=0.5 + i,
                             inputs=(f"chunk-{i}",),
                             outputs=(f"partial-{i}",),
                             category="proc"))
        partials.append(f"partial-{i}")
    files.append(SimFile("result", MB, FileKind.OUTPUT))
    tasks.append(SimTask(id="accum", compute=1.0,
                         inputs=tuple(partials), outputs=("result",),
                         category="accum"))
    return SimWorkflow(tasks, files)


def run_scenario(scenario, *, n_workers=4, workflow=None, horizon=None,
                 seed=5, collect=False):
    """Run ``workflow`` under ``scenario``; horizon defaults to the
    measured fault-free makespan of an identical environment."""
    workflow = workflow or map_reduce_workflow(n_proc=8, compute=2.0)
    if horizon is None:
        base = Env(n_workers=n_workers, seed=seed)
        baseline = TaskVineManager(base.sim, base.cluster, base.storage,
                                   workflow, config=TEST_CONFIG,
                                   trace=base.trace)
        result = baseline.run(limit=1e6)
        assert result.completed
        horizon = result.makespan
    env = Env(n_workers=n_workers, seed=seed)
    events = []
    if collect:
        from repro.obs import EventBus
        bus = EventBus()
        bus.subscribe_all(
            lambda type_, t, fields: events.append(
                dict(fields, type=type_, t=t)))
        env.trace.bus = bus
    manager = TaskVineManager(env.sim, env.cluster, env.storage,
                              workflow, config=TEST_CONFIG,
                              trace=env.trace)
    injector = Injector(manager, scenario, horizon)
    injector.start()
    result = manager.run(limit=1e6)
    return SimpleNamespace(env=env, manager=manager, injector=injector,
                           result=result, horizon=horizon,
                           events=events)


def fired_kinds(injector):
    return [entry["kind"] for entry in injector.fired]


class TestPreemptionStorm:
    def test_kills_the_requested_fraction_and_run_recovers(self):
        scenario = Scenario("storm", (PreemptionStorm(
            at=0.3, fraction=0.5, duration=0.1),))
        run = run_scenario(scenario)
        assert run.result.completed
        alive = [w for w in run.env.cluster.workers.values() if w.alive]
        assert len(alive) == 2  # 50% of 4
        storm = run.injector.fired[0]
        assert storm["kind"] == "preemption-storm"
        assert storm["victims"] == 2

    def test_kill_times_spread_within_window(self):
        scenario = Scenario("storm", (PreemptionStorm(
            at=0.2, fraction=0.5, duration=0.3),))
        run = run_scenario(scenario)
        t0 = 0.2 * run.horizon
        preempts = [r for r in run.env.trace.worker_events
                    if r.kind == "preempt"]
        assert len(preempts) == 2
        for record in preempts:
            assert (t0 - 1e-9 <= record.t
                    <= t0 + 0.3 * run.horizon + 1e-9)


class TestBlackout:
    def test_workers_rejoin_after_the_window(self):
        scenario = Scenario("blk", (Blackout(
            at=0.2, fraction=0.5, duration=0.15),))
        run = run_scenario(scenario)
        assert run.result.completed
        alive = [w for w in run.env.cluster.workers.values() if w.alive]
        # 2 killed, 2 fresh replacements: back to full strength
        assert len(alive) == 4
        assert "rejoin" in fired_kinds(run.injector)


class TestNetworkFaults:
    def test_degrade_is_restored_after_the_window(self):
        scenario = Scenario("deg", (NetworkDegrade(
            at=0.1, fraction=0.5, factor=0.1, duration=0.2),))
        run = run_scenario(scenario)
        assert run.result.completed
        assert "network-degrade" in fired_kinds(run.injector)
        assert "network-restore" in fired_kinds(run.injector)
        assert not run.env.network._healthy_rates  # all restored

    def test_partition_emits_start_and_heal(self):
        scenario = Scenario("part", (NetworkPartition(
            at=0.3, fraction=0.5, duration=0.1),))
        run = run_scenario(scenario, collect=True)
        assert run.result.completed
        phases = [e["phase"] for e in run.events
                  if e["type"] == "PARTITION"]
        assert phases == ["start", "heal"]
        assert run.env.network._partition is None


class TestStorageBrownout:
    def test_factors_reset_after_the_window(self):
        scenario = Scenario("brown", (StorageBrownout(
            at=0.1, latency_factor=50.0, bw_factor=0.05,
            duration=0.3),))
        run = run_scenario(scenario)
        assert run.result.completed
        assert run.env.storage.latency_factor == 1.0
        assert run.env.storage.bw_factor == 1.0
        assert "storage-recover" in fired_kinds(run.injector)


class TestReplicaCorruption:
    def test_drops_hot_intermediates_and_run_recovers(self):
        scenario = Scenario("corrupt", (ReplicaCorruption(
            at=0.5, count=3),))
        run = run_scenario(scenario, workflow=staggered_workflow())
        assert run.result.completed
        drop = next(f for f in run.injector.fired
                    if f["kind"] == "replica-corruption")
        assert drop["dropped"] > 0
        assert all(name.startswith("partial-")
                   for name in drop["files"])


class TestStraggler:
    def test_slows_the_requested_workers(self):
        scenario = Scenario("slow", (StragglerInjection(
            at=0.05, count=2, slowdown=4.0),))
        run = run_scenario(scenario)
        assert run.result.completed
        slowed = [w for w in run.env.cluster.workers.values()
                  if w.spec.speed_factor < 1.0]
        assert len(slowed) == 2
        for w in slowed:
            assert w.spec.speed_factor == pytest.approx(0.25)


class TestDeterminism:
    def test_same_seed_same_firing_record(self):
        scenario = Scenario("mix", (
            StragglerInjection(at=0.05, count=1, slowdown=2.0),
            PreemptionStorm(at=0.3, fraction=0.5, duration=0.1),
            Blackout(at=0.6, fraction=0.25, duration=0.1),
        ), seed=13)
        first = run_scenario(scenario, horizon=6.0)
        second = run_scenario(scenario, horizon=6.0)
        assert first.injector.fired
        assert first.injector.fired == second.injector.fired

    def test_different_seed_changes_victims(self):
        base = Scenario("storm", (PreemptionStorm(
            at=0.1, fraction=0.25, duration=0.0),), seed=1)
        other = Scenario("storm", (PreemptionStorm(
            at=0.1, fraction=0.25, duration=0.0),), seed=2)
        runs = [run_scenario(s, n_workers=8, horizon=4.0)
                for s in (base, other)]
        victims = []
        for run in runs:
            victims.append({w.node_id
                            for w in run.env.cluster.workers.values()
                            if not w.alive})
        assert all(len(v) == 2 for v in victims)
        # seeds 1 and 2 happen to pick different workers; the point is
        # that the choice is a pure function of the scenario seed
        assert victims[0] != victims[1]


class TestMisc:
    def test_unknown_kind_is_an_error(self):
        @dataclass(frozen=True)
        class Bogus(Injection):
            kind = "bogus"

        env = Env(n_workers=2)
        manager = TaskVineManager(env.sim, env.cluster, env.storage,
                                  map_reduce_workflow(n_proc=2),
                                  config=TEST_CONFIG, trace=env.trace)
        injector = Injector(manager, Scenario("b", (Bogus(),)), 10.0)
        with pytest.raises(ValueError, match="bogus"):
            injector._fire(0, Bogus())

    def test_estimate_horizon_scales_with_compute(self):
        small = map_reduce_workflow(n_proc=2, compute=1.0)
        big = map_reduce_workflow(n_proc=64, compute=10.0)
        assert (estimate_horizon(big, 4)
                > estimate_horizon(small, 4) >= 30.0)
