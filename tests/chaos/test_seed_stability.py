"""Same Scenario(seed=...) => byte-identical timelines and txlogs.

EXEC_END ids are content-defined (``stable_trace_id``, CRC32 of the
task's string id), so byte-identity holds across processes too -- the
golden-capture test in tests/core/test_golden_txlog.py exercises that;
here we run twice in one process for speed.
"""

from repro.chaos.inject import Injector
from repro.chaos.scenario import (
    Blackout,
    PreemptionStorm,
    Scenario,
    StragglerInjection,
)
from repro.core.manager import TaskVineManager
from repro.obs import EventBus, TransactionLog

from tests.core.conftest import TEST_CONFIG, Env, map_reduce_workflow

SCENARIO = Scenario("stability", (
    StragglerInjection(at=0.05, count=1, slowdown=3.0),
    PreemptionStorm(at=0.25, fraction=0.5, duration=0.1),
    Blackout(at=0.55, fraction=0.25, duration=0.1),
), seed=21)


def run_once(path: str, scenario: Scenario = SCENARIO):
    env = Env(n_workers=4, seed=9)
    bus = EventBus()
    env.trace.bus = bus
    txlog = TransactionLog(path, meta={"scheduler": "taskvine",
                                       "chaos": scenario.describe()})
    txlog.attach(bus)
    workflow = map_reduce_workflow(n_proc=8, compute=2.0)
    manager = TaskVineManager(env.sim, env.cluster, env.storage,
                              workflow, config=TEST_CONFIG,
                              trace=env.trace)
    injector = Injector(manager, scenario, horizon=8.0)
    injector.start()
    result = manager.run(limit=1e6)
    txlog.close(completed=result.completed, makespan=result.makespan,
                tasks_done=result.tasks_done,
                task_failures=result.task_failures, error=result.error)
    return result, injector


def test_timelines_and_txlogs_are_byte_identical(tmp_path):
    path_a = str(tmp_path / "a.jsonl")
    path_b = str(tmp_path / "b.jsonl")
    result_a, injector_a = run_once(path_a)
    result_b, injector_b = run_once(path_b)

    assert injector_a.fired  # the scenario actually did something
    assert injector_a.fired == injector_b.fired
    assert result_a.completed == result_b.completed
    assert result_a.makespan == result_b.makespan

    with open(path_a, "rb") as fh_a, open(path_b, "rb") as fh_b:
        assert fh_a.read() == fh_b.read()


def test_different_scenario_seed_diverges(tmp_path):
    path_a = str(tmp_path / "a.jsonl")
    path_b = str(tmp_path / "b.jsonl")
    _, injector_a = run_once(path_a)
    reseeded = Scenario(SCENARIO.name, SCENARIO.injections, seed=22)
    _, injector_b = run_once(path_b, reseeded)
    # seed 22 happens to pick a different storm cohort than seed 21;
    # the fired record is a pure function of the scenario seed
    assert injector_a.fired != injector_b.fired
