"""Property: under arbitrary preemption/blackout schedules a TaskVine
run either completes -- every task executed at least once and accounted
exactly once -- or declares defeat with a typed
:class:`~repro.core.manager.UnrecoverableError`.  It never hangs (the
kernel's deadlock detector plus the run limit turn a hang into a
structured failure) and never silently drops tasks.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos.inject import Injector
from repro.chaos.scenario import Blackout, PreemptionStorm, Scenario
from repro.core.manager import TaskVineManager, UnrecoverableError, stable_trace_id
from repro.obs import EventBus

from tests.core.conftest import TEST_CONFIG, Env, map_reduce_workflow

HORIZON = 8.0


@st.composite
def fault_schedules(draw):
    """1-3 storms/blackouts at random times and severities -- up to
    and including killing every worker."""
    n = draw(st.integers(1, 3))
    injections = []
    for _ in range(n):
        at = draw(st.floats(0.02, 0.9))
        fraction = draw(st.floats(0.1, 1.0))
        if draw(st.booleans()):
            injections.append(PreemptionStorm(
                at=at, fraction=fraction,
                duration=draw(st.floats(0.0, 0.3))))
        else:
            injections.append(Blackout(
                at=at, fraction=fraction,
                duration=draw(st.floats(0.05, 0.4))))
    seed = draw(st.integers(0, 2**16))
    return Scenario("random-faults", tuple(injections), seed=seed)


class TestChaosProperties:
    @given(fault_schedules(), st.integers(2, 4))
    @settings(max_examples=25, deadline=None)
    def test_completes_exactly_once_or_raises_typed_error(
            self, scenario, n_workers):
        env = Env(n_workers=n_workers, seed=3)
        done_events = []
        bus = EventBus()
        bus.subscribe_all(
            lambda type_, t, fields: done_events.append(fields["task"])
            if type_ == "TASK_DONE" else None)
        env.trace.bus = bus
        workflow = map_reduce_workflow(n_proc=6, compute=1.5)
        manager = TaskVineManager(env.sim, env.cluster, env.storage,
                                  workflow, config=TEST_CONFIG,
                                  trace=env.trace)
        injector = Injector(manager, scenario, horizon=HORIZON)
        injector.start()

        result = manager.run(limit=1e5)  # returns; never hangs

        if result.completed:
            # every task executed at least once (recovery may have run
            # some more than once)...
            assert set(done_events) == set(workflow.tasks)
            ok_ids = {r.task_id for r in env.trace.tasks if r.ok}
            assert ok_ids >= {stable_trace_id(t)
                              for t in workflow.tasks}
            # ...and accounted exactly once in the result
            assert manager.done == set(workflow.tasks)
            assert result.tasks_done == len(workflow)
            result.raise_for_status()  # no-op on success
        else:
            with pytest.raises(UnrecoverableError):
                result.raise_for_status()
            assert result.error  # defeat is declared, not silent
