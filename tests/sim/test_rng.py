"""Unit tests for deterministic RNG streams."""

from repro.sim.rng import RngRegistry


class TestRngRegistry:
    def test_same_name_same_stream_object(self):
        reg = RngRegistry(1)
        assert reg.stream("a") is reg.stream("a")

    def test_same_seed_reproduces_draws(self):
        first = RngRegistry(42).stream("tasks").random(5)
        second = RngRegistry(42).stream("tasks").random(5)
        assert (first == second).all()

    def test_different_names_independent(self):
        reg = RngRegistry(42)
        a = reg.stream("a").random(5)
        b = reg.stream("b").random(5)
        assert (a != b).any()

    def test_different_seeds_differ(self):
        a = RngRegistry(1).stream("x").random(5)
        b = RngRegistry(2).stream("x").random(5)
        assert (a != b).any()

    def test_new_stream_does_not_perturb_existing(self):
        reg1 = RngRegistry(7)
        first_half = reg1.stream("main").random(3)
        reg1.stream("other")  # new consumer appears mid-run
        second_half = reg1.stream("main").random(3)

        reg2 = RngRegistry(7)
        expected = reg2.stream("main").random(6)
        assert (list(first_half) + list(second_half)
                == list(expected))

    def test_spawn_namespaces_children(self):
        parent = RngRegistry(9)
        child_a = parent.spawn("a")
        child_b = parent.spawn("b")
        assert child_a.seed != child_b.seed
        assert (child_a.stream("x").random(3)
                != child_b.stream("x").random(3)).any()

    def test_spawn_deterministic(self):
        a = RngRegistry(9).spawn("child").stream("s").random(4)
        b = RngRegistry(9).spawn("child").stream("s").random(4)
        assert (a == b).all()
