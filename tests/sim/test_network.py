"""Unit tests for the equal-share flow network."""

import pytest

from repro.sim.engine import Simulation, SimulationError
from repro.sim.network import Network
from repro.sim.trace import TraceRecorder


@pytest.fixture
def env():
    sim = Simulation()
    trace = TraceRecorder()
    net = Network(sim, trace, latency=0.0)
    return sim, net, trace


class TestTopology:
    def test_duplicate_node_rejected(self, env):
        sim, net, _ = env
        net.add_node(1, capacity=100)
        with pytest.raises(SimulationError):
            net.add_node(1, capacity=100)

    def test_zero_capacity_rejected(self, env):
        sim, net, _ = env
        with pytest.raises(SimulationError):
            net.add_node(1, capacity=0)

    def test_unknown_endpoint_rejected(self, env):
        sim, net, _ = env
        net.add_node(1, capacity=100)
        with pytest.raises(SimulationError):
            net.transfer(1, 2, 10)


class TestSingleFlow:
    def test_duration_is_size_over_bandwidth(self, env):
        sim, net, _ = env
        net.add_node(1, capacity=100)
        net.add_node(2, capacity=100)
        done = net.transfer(1, 2, 1000)
        sim.run_until_complete(done)
        assert sim.now == pytest.approx(10.0)

    def test_per_stream_cap_limits_single_flow(self, env):
        sim, net, _ = env
        net.add_node(1, capacity=1000, per_stream_cap=10)
        net.add_node(2, capacity=1000)
        done = net.transfer(1, 2, 100)
        sim.run_until_complete(done)
        assert sim.now == pytest.approx(10.0)

    def test_latency_added(self):
        sim = Simulation()
        net = Network(sim, latency=0.5)
        net.add_node(1, capacity=100)
        net.add_node(2, capacity=100)
        done = net.transfer(1, 2, 100)
        sim.run_until_complete(done)
        assert sim.now == pytest.approx(1.5)

    def test_zero_byte_transfer_completes(self, env):
        sim, net, _ = env
        net.add_node(1, capacity=100)
        net.add_node(2, capacity=100)
        done = net.transfer(1, 2, 0)
        value = sim.run_until_complete(done)
        assert value == 0

    def test_local_transfer_is_free(self, env):
        sim, net, _ = env
        net.add_node(1, capacity=100)
        done = net.transfer(1, 1, 1e12)
        sim.run_until_complete(done)
        assert sim.now == 0.0


class TestSharing:
    def test_two_flows_share_source_capacity(self, env):
        sim, net, _ = env
        net.add_node(0, capacity=100)  # source bottleneck
        net.add_node(1, capacity=1000)
        net.add_node(2, capacity=1000)
        d1 = net.transfer(0, 1, 500)
        d2 = net.transfer(0, 2, 500)
        sim.run_until_complete(d1 & d2)
        # Each gets 50 B/s through the shared source: 500/50 = 10 s.
        assert sim.now == pytest.approx(10.0)

    def test_flow_speeds_up_when_contender_finishes(self, env):
        sim, net, _ = env
        net.add_node(0, capacity=100)
        net.add_node(1, capacity=1000)
        net.add_node(2, capacity=1000)
        short = net.transfer(0, 1, 100)   # at 50 B/s: done at t=2
        long = net.transfer(0, 2, 400)
        sim.run_until_complete(short)
        t_short = sim.now
        sim.run_until_complete(long)
        # long ran at 50 B/s for 2 s (100 B), then 100 B/s for the
        # remaining 300 B -> 2 + 3 = 5 s total.
        assert t_short == pytest.approx(2.0)
        assert sim.now == pytest.approx(5.0)

    def test_destination_bottleneck(self, env):
        sim, net, _ = env
        net.add_node(0, capacity=1000)
        net.add_node(1, capacity=1000)
        net.add_node(2, capacity=50)  # destination bottleneck
        d1 = net.transfer(0, 2, 100)
        d2 = net.transfer(1, 2, 100)
        sim.run_until_complete(d1 & d2)
        # 25 B/s each through the 50 B/s destination.
        assert sim.now == pytest.approx(4.0)

    def test_many_flows_aggregate_throughput_bounded(self, env):
        sim, net, _ = env
        net.add_node(0, capacity=100)
        for node in range(1, 21):
            net.add_node(node, capacity=1000)
        events = [net.transfer(0, node, 50) for node in range(1, 21)]
        sim.run_until_complete(sim.all_of(events))
        # 20 x 50 = 1000 bytes through a 100 B/s pipe: >= 10 s.
        assert sim.now == pytest.approx(10.0, rel=0.01)


class TestFailure:
    def test_node_removal_fails_inflight_flows(self, env):
        sim, net, _ = env
        net.add_node(1, capacity=10)
        net.add_node(2, capacity=10)
        done = net.transfer(1, 2, 1000)  # would take 100 s
        caught = []

        def killer():
            yield sim.timeout(5)
            net.remove_node(2)

        def waiter():
            try:
                yield done
            except ConnectionError:
                caught.append(sim.now)

        sim.process(killer())
        sim.process(waiter())
        sim.run()
        assert caught == [5]

    def test_removed_node_frees_contended_capacity(self, env):
        sim, net, _ = env
        net.add_node(0, capacity=100)
        net.add_node(1, capacity=1000)
        net.add_node(2, capacity=1000)
        survivor = net.transfer(0, 1, 1000)
        victim = net.transfer(0, 2, 1000)
        victim.callbacks.append(lambda ev: None)  # defuse failure

        def killer():
            yield sim.timeout(2)
            net.remove_node(2)

        sim.process(killer())
        sim.run_until_complete(survivor)
        # 2 s at 50 B/s (100 B), then 900 B at 100 B/s -> 11 s.
        assert sim.now == pytest.approx(11.0)


class TestTraceIntegration:
    def test_transfers_recorded(self, env):
        sim, net, trace = env
        net.add_node(1, capacity=100)
        net.add_node(2, capacity=100)
        sim.run_until_complete(net.transfer(1, 2, 300, kind="peer"))
        assert len(trace.transfers) == 1
        rec = trace.transfers[0]
        assert (rec.src, rec.dst, rec.nbytes, rec.kind) == (1, 2, 300, "peer")
        assert rec.t_end == pytest.approx(3.0)

    def test_transfer_matrix_accumulates(self, env):
        sim, net, trace = env
        for node in range(3):
            net.add_node(node, capacity=100)
        done = [net.transfer(0, 1, 100), net.transfer(0, 2, 100),
                net.transfer(1, 2, 50)]
        sim.run_until_complete(sim.all_of(done))
        mat = trace.transfer_matrix(3)
        assert mat[0, 1] == 100
        assert mat[0, 2] == 100
        assert mat[1, 2] == 50
        assert mat[2, 1] == 0
