"""Unit tests for the cluster / batch-system model."""

import pytest

from repro.sim.cluster import CAMPUS_WORKER, Cluster, NodeSpec
from repro.sim.engine import Simulation
from repro.sim.network import Network
from repro.sim.rng import RngRegistry
from repro.sim.storage import GB
from repro.sim.trace import TraceRecorder


def make_cluster(**kwargs):
    sim = Simulation()
    trace = TraceRecorder()
    net = Network(sim, trace, latency=0.0)
    cluster = Cluster(sim, net, trace, RngRegistry(seed=7), **kwargs)
    return sim, net, trace, cluster


class TestProvisioning:
    def test_manager_is_node_zero(self):
        _, net, _, _ = make_cluster()
        assert Cluster.MANAGER_NODE in net.pipes
        assert Cluster.MANAGER_NODE == 0

    def test_provision_assigns_sequential_ids(self):
        _, _, _, cluster = make_cluster()
        nodes = cluster.provision(5)
        assert [n.node_id for n in nodes] == [1, 2, 3, 4, 5]

    def test_workers_registered_on_network(self):
        _, net, _, cluster = make_cluster()
        cluster.provision(3)
        assert set(net.pipes) == {0, 1, 2, 3}

    def test_spawn_events_traced(self):
        _, _, trace, cluster = make_cluster()
        cluster.provision(4)
        spawns = [e for e in trace.worker_events if e.kind == "spawn"]
        assert len(spawns) == 4

    def test_total_cores(self):
        _, _, _, cluster = make_cluster()
        cluster.provision(10, NodeSpec(cores=12))
        assert cluster.total_cores() == 120

    def test_campus_spec_matches_paper(self):
        # Section IV: 12-core workers, 96 GB RAM, 108 GB disk.
        assert CAMPUS_WORKER.cores == 12
        assert CAMPUS_WORKER.ram == pytest.approx(96 * GB)
        assert CAMPUS_WORKER.disk == pytest.approx(108 * GB)

    def test_heterogeneity_varies_speed(self):
        _, _, _, cluster = make_cluster(heterogeneity=0.3)
        nodes = cluster.provision(20)
        speeds = {n.spec.speed_factor for n in nodes}
        assert len(speeds) > 1

    def test_homogeneous_by_default(self):
        _, _, _, cluster = make_cluster()
        nodes = cluster.provision(5)
        assert all(n.spec.speed_factor == 1.0 for n in nodes)

    def test_startup_delay_defers_alive(self):
        sim, _, _, cluster = make_cluster(worker_startup_delay=10.0)
        nodes = cluster.provision(5)
        assert not any(n.alive for n in nodes)
        sim.run()
        assert all(n.alive for n in nodes)
        assert sim.now > 0

    def test_scale_runtime_uses_speed_factor(self):
        _, _, _, cluster = make_cluster()
        node = cluster.provision(1, NodeSpec(speed_factor=2.0))[0]
        assert node.scale_runtime(10.0) == pytest.approx(5.0)


class TestPreemption:
    def test_preemption_notifies_handler_and_removes_node(self):
        sim, net, trace, cluster = make_cluster(preemption_rate=0.01)
        nodes = cluster.provision(20)
        lost = []
        cluster.on_preemption(lambda node: lost.append(node.node_id))
        sim.run(until=10000)
        assert lost, "with rate 0.01/s over 10000 s, preemptions expected"
        for node_id in lost:
            assert not cluster.workers[node_id].alive
            assert node_id not in net.pipes
        preempt_events = [e for e in trace.worker_events
                          if e.kind == "preempt"]
        assert len(preempt_events) == len(lost)

    def test_no_preemption_when_rate_zero(self):
        sim, _, _, cluster = make_cluster(preemption_rate=0.0)
        cluster.provision(10)
        sim.run(until=100000)
        assert len(cluster.alive_workers()) == 10

    def test_manual_preempt_idempotent(self):
        sim, _, trace, cluster = make_cluster()
        node = cluster.provision(1)[0]
        cluster.preempt(node)
        cluster.preempt(node)  # second call is a no-op
        assert len([e for e in trace.worker_events
                    if e.kind == "preempt"]) == 1

    def test_alive_workers_excludes_preempted(self):
        sim, _, _, cluster = make_cluster()
        nodes = cluster.provision(5)
        cluster.preempt(nodes[2])
        alive_ids = [w.node_id for w in cluster.alive_workers()]
        assert alive_ids == [1, 2, 4, 5]


class TestDeterminism:
    def test_same_seed_same_preemptions(self):
        def run():
            sim, _, trace, cluster = make_cluster(preemption_rate=0.001)
            cluster.provision(50)
            sim.run(until=5000)
            return [(e.worker, e.t) for e in trace.worker_events
                    if e.kind == "preempt"]

        assert run() == run()
