"""Property-based tests on kernel invariants (hypothesis)."""

import heapq

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Container, Resource, Simulation, Store


class TestClockMonotonicity:
    @given(st.lists(st.floats(0, 100), min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_events_fire_in_time_order(self, delays):
        sim = Simulation()
        fired = []

        def waiter(d):
            yield sim.timeout(d)
            fired.append(sim.now)

        for d in delays:
            sim.process(waiter(d))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)
        assert sim.now == max(delays)


class TestResourceInvariants:
    @given(st.integers(1, 5), st.lists(st.floats(0.1, 5), min_size=1,
                                       max_size=25))
    @settings(max_examples=40, deadline=None)
    def test_concurrent_holders_never_exceed_capacity(self, capacity,
                                                      durations):
        sim = Simulation()
        resource = Resource(sim, capacity=capacity)
        active = [0]
        peak = [0]

        def user(duration):
            req = resource.request()
            yield req
            active[0] += 1
            peak[0] = max(peak[0], active[0])
            yield sim.timeout(duration)
            active[0] -= 1
            resource.release(req)

        for d in durations:
            sim.process(user(d))
        sim.run()
        assert peak[0] <= capacity
        assert active[0] == 0
        assert resource.count == 0

    @given(st.integers(1, 4), st.lists(st.floats(0.1, 3), min_size=2,
                                       max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_total_service_conserved(self, capacity, durations):
        """Makespan >= total work / capacity (no work invented)."""
        sim = Simulation()
        resource = Resource(sim, capacity=capacity)

        def user(duration):
            req = resource.request()
            yield req
            yield sim.timeout(duration)
            resource.release(req)

        for d in durations:
            sim.process(user(d))
        sim.run()
        assert sim.now >= sum(durations) / capacity - 1e-9
        assert sim.now <= sum(durations) + 1e-9


class TestContainerConservation:
    @given(st.lists(st.tuples(st.booleans(), st.floats(0.1, 10)),
                    min_size=1, max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_level_stays_in_bounds(self, ops):
        sim = Simulation()
        box = Container(sim, capacity=50, init=25)
        observed = []

        def actor(is_put, amount):
            amount = min(amount, 20.0)
            if is_put:
                yield box.put(amount)
            else:
                yield box.get(amount)
            observed.append(box.level)

        for is_put, amount in ops:
            sim.process(actor(is_put, amount))
        sim.run(until=1000)
        for level in observed:
            assert -1e-9 <= level <= 50 + 1e-9


class TestStoreOrdering:
    @given(st.lists(st.integers(), min_size=1, max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_fifo_preserved(self, items):
        sim = Simulation()
        store = Store(sim)
        received = []

        def producer():
            for item in items:
                yield store.put(item)
                yield sim.timeout(0.1)

        def consumer():
            for _ in items:
                value = yield store.get()
                received.append(value)

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert received == items
