"""Unit tests for shared-filesystem and local-disk models."""

import pytest

from repro.sim.engine import Simulation
from repro.sim.network import Network
from repro.sim.storage import (
    GB,
    HDFS_PROFILE,
    MB,
    VAST_PROFILE,
    DiskFullError,
    LocalDisk,
    SharedFilesystem,
    StorageProfile,
)
from repro.sim.trace import TraceRecorder


@pytest.fixture
def env():
    sim = Simulation()
    trace = TraceRecorder()
    net = Network(sim, trace, latency=0.0)
    net.add_node(1, capacity=10 * GB)
    return sim, net, trace


def make_fs(sim, net, latency=0.0, stream_bw=1 * GB, agg_bw=10 * GB,
            capacity=100 * GB, model="network", trace=None):
    profile = StorageProfile(
        name="testfs", metadata_latency=latency, per_stream_bw=stream_bw,
        aggregate_bw=agg_bw, capacity=capacity)
    return SharedFilesystem(sim, net, profile, model=model, trace=trace)


class TestSharedFilesystem:
    def test_read_duration(self, env):
        sim, net, _ = env
        fs = make_fs(sim, net, stream_bw=1 * GB)
        done = fs.read(1, 2 * GB)
        sim.run_until_complete(done)
        assert sim.now == pytest.approx(2.0)
        assert fs.bytes_read == 2 * GB

    def test_metadata_latency_paid_per_io(self, env):
        sim, net, _ = env
        fs = make_fs(sim, net, latency=0.5)
        sim.run_until_complete(fs.read(1, 1 * MB))
        assert sim.now >= 0.5

    def test_write_accounts_capacity(self, env):
        sim, net, _ = env
        fs = make_fs(sim, net, capacity=10 * GB)
        sim.run_until_complete(fs.write(1, 4 * GB))
        assert fs.used == 4 * GB

    def test_write_beyond_capacity_fails(self, env):
        sim, net, _ = env
        fs = make_fs(sim, net, capacity=1 * GB)
        done = fs.write(1, 2 * GB)
        with pytest.raises(DiskFullError):
            sim.run_until_complete(done)

    def test_delete_frees_space(self, env):
        sim, net, _ = env
        fs = make_fs(sim, net, capacity=10 * GB)
        sim.run_until_complete(fs.write(1, 4 * GB))
        fs.delete(4 * GB)
        assert fs.used == 0

    def test_aggregate_bandwidth_caps_many_readers(self):
        sim = Simulation()
        net = Network(sim, latency=0.0)
        n_clients = 10
        for node in range(1, n_clients + 1):
            net.add_node(node, capacity=10 * GB)
        fs = make_fs(sim, net, stream_bw=10 * GB, agg_bw=1 * GB)
        events = [fs.read(node, 1 * GB) for node in range(1, n_clients + 1)]
        sim.run_until_complete(sim.all_of(events))
        # 10 GB total through a 1 GB/s filesystem pipe.
        assert sim.now == pytest.approx(10.0, rel=0.01)

    def test_hdfs_slower_metadata_than_vast(self):
        assert HDFS_PROFILE.metadata_latency > 10 * VAST_PROFILE.metadata_latency

    def test_metadata_op_counts(self, env):
        sim, net, _ = env
        fs = make_fs(sim, net, latency=0.01)
        sim.run_until_complete(fs.metadata_op())
        assert fs.metadata_ops == 1
        assert sim.now == pytest.approx(0.01)

    def test_reads_traced_with_fs_pseudonode(self, env):
        sim, net, trace = env
        fs = make_fs(sim, net)
        sim.run_until_complete(fs.read(1, 1 * GB))
        assert any(t.src == fs.node_id for t in trace.transfers)
        # Pseudo-node traffic stays out of the worker heatmap.
        mat = trace.transfer_matrix(2)
        assert mat.sum() == 0


class TestQueueModel:
    """The O(1)-event approximation used for large runs."""

    def test_read_duration(self, env):
        sim, net, _ = env
        fs = make_fs(sim, net, stream_bw=1 * GB, model="queue")
        sim.run_until_complete(fs.read(1, 2 * GB))
        assert sim.now == pytest.approx(2.0)

    def test_stream_cap_from_aggregate(self):
        sim = Simulation()
        net = Network(sim, latency=0.0)
        net.add_node(1, capacity=100 * GB)
        # aggregate 2 GB/s at 1 GB/s per stream -> 2 concurrent streams
        fs = make_fs(sim, net, stream_bw=1 * GB, agg_bw=2 * GB,
                     model="queue")
        events = [fs.read(1, 1 * GB) for _ in range(4)]
        sim.run_until_complete(sim.all_of(events))
        # 4 GB total at 2 GB/s effective: 2 seconds.
        assert sim.now == pytest.approx(2.0)

    def test_queue_model_traces_when_given_recorder(self, env):
        sim, net, trace = env
        fs = make_fs(sim, net, model="queue", trace=trace)
        sim.run_until_complete(fs.read(1, 1 * GB))
        assert len(trace.transfers) == 1
        assert trace.transfers[0].src == fs.node_id

    def test_unknown_model_rejected(self, env):
        sim, net, _ = env
        with pytest.raises(Exception):
            make_fs(sim, net, model="quantum")


class TestLocalDisk:
    def test_allocate_and_free(self):
        sim = Simulation()
        disk = LocalDisk(sim, capacity=100)
        disk.allocate(60)
        assert disk.available == 40
        disk.free(60)
        assert disk.available == 100

    def test_overflow_raises(self):
        sim = Simulation()
        disk = LocalDisk(sim, capacity=100)
        disk.allocate(90)
        with pytest.raises(DiskFullError):
            disk.allocate(20)

    def test_free_never_goes_negative(self):
        sim = Simulation()
        disk = LocalDisk(sim, capacity=100)
        disk.allocate(10)
        disk.free(50)
        assert disk.used == 0

    def test_read_write_service_times(self):
        sim = Simulation()
        disk = LocalDisk(sim, capacity=1e12, read_bw=100, write_bw=50,
                         latency=0.0)
        sim.run_until_complete(disk.read(1000))
        assert sim.now == pytest.approx(10.0)
        sim.run_until_complete(disk.write(1000))
        assert sim.now == pytest.approx(30.0)
