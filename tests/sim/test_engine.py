"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Container,
    Interrupt,
    Resource,
    Simulation,
    SimulationError,
    Store,
)


@pytest.fixture
def sim():
    return Simulation()


class TestClockAndTimeouts:
    def test_clock_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_timeout_advances_clock(self, sim):
        def proc():
            yield sim.timeout(5)

        sim.process(proc())
        sim.run()
        assert sim.now == 5

    def test_timeout_value_passthrough(self, sim):
        results = []

        def proc():
            value = yield sim.timeout(1, value="hello")
            results.append(value)

        sim.process(proc())
        sim.run()
        assert results == ["hello"]

    def test_negative_timeout_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.timeout(-1)

    def test_run_until_stops_clock_exactly(self, sim):
        def proc():
            yield sim.timeout(100)

        sim.process(proc())
        sim.run(until=30)
        assert sim.now == 30

    def test_run_until_past_raises(self, sim):
        def proc():
            yield sim.timeout(10)

        sim.process(proc())
        sim.run()
        with pytest.raises(SimulationError):
            sim.run(until=5)

    def test_sequential_timeouts_accumulate(self, sim):
        def proc():
            yield sim.timeout(3)
            yield sim.timeout(4)

        sim.process(proc())
        sim.run()
        assert sim.now == 7

    def test_same_time_events_fire_in_schedule_order(self, sim):
        order = []

        def proc(tag):
            yield sim.timeout(5)
            order.append(tag)

        for tag in "abc":
            sim.process(proc(tag))
        sim.run()
        assert order == ["a", "b", "c"]


class TestEvents:
    def test_manual_succeed(self, sim):
        ev = sim.event()
        results = []

        def waiter():
            value = yield ev
            results.append(value)

        def firer():
            yield sim.timeout(2)
            ev.succeed(42)

        sim.process(waiter())
        sim.process(firer())
        sim.run()
        assert results == [42]
        assert ev.ok and ev.value == 42

    def test_fail_propagates_into_process(self, sim):
        ev = sim.event()
        caught = []

        def waiter():
            try:
                yield ev
            except ValueError as exc:
                caught.append(str(exc))

        def firer():
            yield sim.timeout(1)
            ev.fail(ValueError("boom"))

        sim.process(waiter())
        sim.process(firer())
        sim.run()
        assert caught == ["boom"]

    def test_double_trigger_rejected(self, sim):
        ev = sim.event()
        ev.succeed(1)
        with pytest.raises(SimulationError):
            ev.succeed(2)
        with pytest.raises(SimulationError):
            ev.fail(RuntimeError("x"))

    def test_fail_requires_exception(self, sim):
        ev = sim.event()
        with pytest.raises(SimulationError):
            ev.fail("not an exception")

    def test_value_before_trigger_raises(self, sim):
        ev = sim.event()
        with pytest.raises(SimulationError):
            _ = ev.value
        with pytest.raises(SimulationError):
            _ = ev.ok

    def test_yield_already_processed_event_resumes_immediately(self, sim):
        ev = sim.event()
        ev.succeed("ready")
        results = []

        def late_waiter():
            yield sim.timeout(10)
            value = yield ev
            results.append((sim.now, value))

        sim.process(late_waiter())
        sim.run()
        assert results == [(10, "ready")]

    def test_yield_non_event_fails_process(self, sim):
        def bad():
            yield 42

        proc = sim.process(bad())
        # Nobody is waiting on the process, so the error surfaces.
        with pytest.raises(SimulationError, match="non-event"):
            sim.run()
        assert proc.triggered and not proc.ok

    def test_unwatched_failure_raises_from_run(self, sim):
        def bad():
            yield sim.timeout(1)
            raise ValueError("lost")

        sim.process(bad())
        with pytest.raises(ValueError, match="lost"):
            sim.run()


class TestProcesses:
    def test_return_value_becomes_process_value(self, sim):
        def proc():
            yield sim.timeout(1)
            return "done"

        p = sim.process(proc())
        sim.run()
        assert p.value == "done"

    def test_process_is_waitable_event(self, sim):
        def inner():
            yield sim.timeout(5)
            return 99

        results = []

        def outer():
            value = yield sim.process(inner())
            results.append(value)

        sim.process(outer())
        sim.run()
        assert results == [99]

    def test_run_until_complete_returns_value(self, sim):
        def proc():
            yield sim.timeout(3)
            return "v"

        p = sim.process(proc())
        assert sim.run_until_complete(p) == "v"

    def test_run_until_complete_raises_failure(self, sim):
        def proc():
            yield sim.timeout(1)
            raise RuntimeError("died")

        p = sim.process(proc())
        with pytest.raises(RuntimeError, match="died"):
            sim.run_until_complete(p)

    def test_run_until_complete_deadlock_detected(self, sim):
        ev = sim.event()

        def proc():
            yield ev

        p = sim.process(proc())
        with pytest.raises(SimulationError, match="deadlock"):
            sim.run_until_complete(p)

    def test_run_until_complete_time_limit(self, sim):
        def proc():
            yield sim.timeout(1000)

        p = sim.process(proc())
        with pytest.raises(SimulationError, match="limit"):
            sim.run_until_complete(p, limit=10)

    def test_uncaught_exception_fails_process_event(self, sim):
        def proc():
            yield sim.timeout(1)
            raise KeyError("k")

        p = sim.process(proc())
        waiter_caught = []

        def waiter():
            try:
                yield p
            except KeyError:
                waiter_caught.append(True)

        sim.process(waiter())
        sim.run()
        assert waiter_caught == [True]


class TestInterrupts:
    def test_interrupt_delivers_cause(self, sim):
        causes = []

        def victim():
            try:
                yield sim.timeout(100)
            except Interrupt as interrupt:
                causes.append((interrupt.cause, sim.now))

        v = sim.process(victim())

        def attacker():
            yield sim.timeout(5)
            v.interrupt("preempted")

        sim.process(attacker())
        sim.run()
        assert causes == [("preempted", 5)]

    def test_interrupted_process_can_continue(self, sim):
        log = []

        def victim():
            try:
                yield sim.timeout(100)
            except Interrupt:
                log.append(("interrupted", sim.now))
            yield sim.timeout(10)
            log.append(("done", sim.now))

        v = sim.process(victim())

        def attacker():
            yield sim.timeout(5)
            v.interrupt()

        sim.process(attacker())
        sim.run()
        assert log == [("interrupted", 5), ("done", 15)]

    def test_interrupt_dead_process_rejected(self, sim):
        def victim():
            yield sim.timeout(1)

        v = sim.process(victim())
        sim.run()
        with pytest.raises(SimulationError):
            v.interrupt()

    def test_same_instant_interrupt_is_deterministic(self, sim):
        resumes = []

        def victim():
            try:
                yield sim.timeout(10)
                resumes.append("timeout")
            except Interrupt:
                resumes.append("interrupt")
            yield sim.timeout(50)
            resumes.append("end")

        v = sim.process(victim())

        def attacker():
            yield sim.timeout(10)  # same instant as the victim's timeout
            if v.is_alive:
                v.interrupt()

        sim.process(attacker())
        # The victim's timeout (scheduled first) resumes it first, so the
        # interrupt lands at the *second* yield, outside the try block,
        # killing the process with an unhandled Interrupt.
        with pytest.raises(Interrupt):
            sim.run()
        assert resumes == ["timeout"]
        assert not v.ok and isinstance(v.value, Interrupt)


class TestConditions:
    def test_all_of_waits_for_all(self, sim):
        times = []

        def proc():
            yield AllOf(sim, [sim.timeout(3), sim.timeout(7)])
            times.append(sim.now)

        sim.process(proc())
        sim.run()
        assert times == [7]

    def test_any_of_fires_on_first(self, sim):
        times = []

        def proc():
            yield AnyOf(sim, [sim.timeout(3), sim.timeout(7)])
            times.append(sim.now)

        sim.process(proc())
        sim.run()
        assert times == [3]

    def test_and_or_operators(self, sim):
        times = []

        def proc():
            yield sim.timeout(2) & sim.timeout(4)
            times.append(sim.now)
            yield sim.timeout(10) | sim.timeout(1)
            times.append(sim.now)

        sim.process(proc())
        sim.run()
        assert times == [4, 5]

    def test_all_of_empty_fires_immediately(self, sim):
        times = []

        def proc():
            yield AllOf(sim, [])
            times.append(sim.now)

        sim.process(proc())
        sim.run()
        assert times == [0]

    def test_all_of_fails_fast(self, sim):
        ev = sim.event()
        caught = []

        def proc():
            try:
                yield AllOf(sim, [ev, sim.timeout(100)])
            except RuntimeError:
                caught.append(sim.now)

        def failer():
            yield sim.timeout(2)
            ev.fail(RuntimeError("bad"))

        sim.process(proc())
        sim.process(failer())
        sim.run()
        assert caught == [2]


class TestResource:
    def test_capacity_enforced(self, sim):
        res = Resource(sim, capacity=2)
        active = []
        peak = []

        def user(uid):
            req = res.request()
            yield req
            active.append(uid)
            peak.append(len(active))
            yield sim.timeout(10)
            active.remove(uid)
            res.release(req)

        for uid in range(5):
            sim.process(user(uid))
        sim.run()
        assert max(peak) == 2
        assert sim.now == 30  # 5 users, 2 at a time, 10s each

    def test_fifo_ordering(self, sim):
        res = Resource(sim, capacity=1)
        order = []

        def user(uid):
            req = res.request()
            yield req
            order.append(uid)
            yield sim.timeout(1)
            res.release(req)

        for uid in range(4):
            sim.process(user(uid))
        sim.run()
        assert order == [0, 1, 2, 3]

    def test_priority_queue_order(self, sim):
        res = Resource(sim, capacity=1)
        order = []

        def holder():
            req = res.request()
            yield req
            yield sim.timeout(10)
            res.release(req)

        def user(uid, priority):
            yield sim.timeout(1)  # queue up behind the holder
            req = res.request(priority=priority)
            yield req
            order.append(uid)
            res.release(req)

        sim.process(holder())
        sim.process(user("low", priority=5))
        sim.process(user("high", priority=-5))
        sim.run()
        assert order == ["high", "low"]

    def test_release_without_hold_rejected(self, sim):
        res = Resource(sim, capacity=1)

        def proc():
            req = res.request()
            yield req
            res.release(req)
            with pytest.raises(SimulationError):
                res.release(req)

        sim.process(proc())
        sim.run()

    def test_bad_capacity_rejected(self, sim):
        with pytest.raises(SimulationError):
            Resource(sim, capacity=0)

    def test_cancel_queued_request(self, sim):
        res = Resource(sim, capacity=1)
        got = []

        def holder():
            req = res.request()
            yield req
            yield sim.timeout(10)
            res.release(req)

        def impatient():
            yield sim.timeout(1)
            req = res.request()
            yield sim.timeout(1) | req
            if not req.triggered:
                req.cancel()
            else:
                got.append("got it")

        def patient():
            yield sim.timeout(2)
            req = res.request()
            yield req
            got.append(("patient", sim.now))
            res.release(req)

        sim.process(holder())
        sim.process(impatient())
        sim.process(patient())
        sim.run()
        # The impatient request was withdrawn, so patient got the slot.
        assert got == [("patient", 10)]


class TestContainer:
    def test_put_get_levels(self, sim):
        box = Container(sim, capacity=100, init=50)

        def proc():
            yield box.get(30)
            assert box.level == 20
            yield box.put(60)
            assert box.level == 80

        sim.process(proc())
        sim.run()
        assert box.level == 80

    def test_get_blocks_until_available(self, sim):
        box = Container(sim, capacity=100, init=0)
        times = []

        def getter():
            yield box.get(10)
            times.append(sim.now)

        def putter():
            yield sim.timeout(5)
            yield box.put(10)

        sim.process(getter())
        sim.process(putter())
        sim.run()
        assert times == [5]

    def test_put_blocks_at_capacity(self, sim):
        box = Container(sim, capacity=10, init=10)
        times = []

        def putter():
            yield box.put(5)
            times.append(sim.now)

        def drainer():
            yield sim.timeout(3)
            yield box.get(5)

        sim.process(putter())
        sim.process(drainer())
        sim.run()
        assert times == [3]

    def test_bad_amounts_rejected(self, sim):
        box = Container(sim, capacity=10)
        with pytest.raises(SimulationError):
            box.put(-1)
        with pytest.raises(SimulationError):
            box.get(-1)
        with pytest.raises(SimulationError):
            Container(sim, capacity=0)
        with pytest.raises(SimulationError):
            Container(sim, capacity=5, init=6)


class TestStore:
    def test_fifo_items(self, sim):
        store = Store(sim)
        got = []

        def producer():
            for item in "abc":
                yield store.put(item)
                yield sim.timeout(1)

        def consumer():
            for _ in range(3):
                item = yield store.get()
                got.append(item)

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert got == ["a", "b", "c"]

    def test_get_blocks_on_empty(self, sim):
        store = Store(sim)
        times = []

        def consumer():
            yield store.get()
            times.append(sim.now)

        def producer():
            yield sim.timeout(7)
            yield store.put("x")

        sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert times == [7]

    def test_capacity_blocks_put(self, sim):
        store = Store(sim, capacity=1)
        times = []

        def producer():
            yield store.put("a")
            yield store.put("b")
            times.append(sim.now)

        def consumer():
            yield sim.timeout(4)
            yield store.get()

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert times == [4]


class TestDeterminism:
    def test_identical_runs_produce_identical_event_counts(self):
        def build_and_run():
            sim = Simulation()
            res = Resource(sim, capacity=3)
            log = []

            def user(uid):
                req = res.request()
                yield req
                log.append((sim.now, uid))
                yield sim.timeout(1 + uid % 3)
                res.release(req)

            for uid in range(20):
                sim.process(user(uid))
            sim.run()
            return log, sim.events_processed

        first = build_and_run()
        second = build_and_run()
        assert first == second
