"""Unit tests for the fault-injection hooks on the sim substrate:
network degrade/partition, storage brownouts, cluster slow_node."""

import pytest

from repro.sim.cluster import Cluster, NodeSpec
from repro.sim.engine import Simulation, SimulationError
from repro.sim.network import Network
from repro.sim.rng import RngRegistry
from repro.sim.storage import GB, MB, SharedFilesystem, StorageProfile
from repro.sim.trace import TraceRecorder


def make_net(n=2):
    sim = Simulation()
    trace = TraceRecorder()
    network = Network(sim, trace, latency=0.0)
    cluster = Cluster(sim, network, trace, RngRegistry(1),
                      manager_nic_bw=1 * GB)
    cluster.provision(n, NodeSpec(nic_bw=1 * GB))
    return sim, network, cluster


class TestNetworkDegrade:
    def test_scales_rates_and_restores_exactly(self):
        sim, network, cluster = make_net()
        node = next(iter(cluster.workers))
        pipe = network.pipes[node]
        healthy = (pipe.capacity, pipe.per_stream_cap)
        network.degrade(node, 0.1)
        assert pipe.capacity == pytest.approx(healthy[0] * 0.1)
        assert pipe.per_stream_cap == pytest.approx(healthy[1] * 0.1)
        network.restore(node)
        assert (pipe.capacity, pipe.per_stream_cap) == healthy

    def test_repeated_degrade_composes_from_healthy_baseline(self):
        sim, network, cluster = make_net()
        node = next(iter(cluster.workers))
        pipe = network.pipes[node]
        healthy = pipe.capacity
        network.degrade(node, 0.5)
        network.degrade(node, 0.1)  # from the healthy rate, not 0.05
        assert pipe.capacity == pytest.approx(healthy * 0.1)
        network.restore(node)
        assert pipe.capacity == healthy

    def test_degraded_transfer_is_slower(self):
        sim, network, cluster = make_net()
        nodes = list(cluster.workers)
        done = network.transfer(nodes[0], nodes[1], 100 * MB)
        sim.run_until_complete(done)
        fast = sim.now
        sim2, network2, cluster2 = make_net()
        nodes2 = list(cluster2.workers)
        network2.degrade(nodes2[1], 0.1)
        done2 = network2.transfer(nodes2[0], nodes2[1], 100 * MB)
        sim2.run_until_complete(done2)
        assert sim2.now > fast * 5

    def test_rejects_nonpositive_factor(self):
        _, network, cluster = make_net()
        node = next(iter(cluster.workers))
        with pytest.raises(SimulationError):
            network.degrade(node, 0.0)

    def test_restore_without_degrade_is_a_no_op(self):
        _, network, cluster = make_net()
        network.restore(next(iter(cluster.workers)))


class TestNetworkPartition:
    def test_blocks_new_crossing_transfers(self):
        sim, network, cluster = make_net()
        nodes = list(cluster.workers)
        network.partition({nodes[0]})
        done = network.transfer(nodes[0], nodes[1], MB)
        with pytest.raises(ConnectionError):
            sim.run_until_complete(done)

    def test_same_side_transfers_still_flow(self):
        sim, network, cluster = make_net(3)
        nodes = list(cluster.workers)
        network.partition({nodes[0]})
        done = network.transfer(nodes[1], nodes[2], MB)
        sim.run_until_complete(done)
        assert done.triggered

    def test_fails_inflight_crossing_flows(self):
        sim, network, cluster = make_net()
        nodes = list(cluster.workers)
        done = network.transfer(nodes[0], nodes[1], GB)

        def mid_flight():
            yield sim.timeout(0.01)
            network.partition({nodes[0]})

        sim.process(mid_flight())
        with pytest.raises(ConnectionError):
            sim.run_until_complete(done)

    def test_heal_reopens_traffic(self):
        sim, network, cluster = make_net()
        nodes = list(cluster.workers)
        network.partition({nodes[0]})
        network.heal()
        done = network.transfer(nodes[0], nodes[1], MB)
        sim.run_until_complete(done)
        assert done.triggered


class TestStorageBrownout:
    PROFILE = StorageProfile(name="t", metadata_latency=0.01,
                             per_stream_bw=1 * GB, aggregate_bw=10 * GB,
                             capacity=1e15)

    def make_fs(self):
        sim = Simulation()
        trace = TraceRecorder()
        network = Network(sim, trace)
        fs = SharedFilesystem(sim, network, self.PROFILE, trace=trace)
        return sim, fs

    def test_brownout_slows_reads_then_reset(self):
        sim, fs = self.make_fs()
        done = fs.read(1, 100 * MB)
        sim.run_until_complete(done)
        healthy = sim.now

        sim2, fs2 = self.make_fs()
        fs2.set_brownout(latency_factor=10.0, bw_factor=0.1)
        done2 = fs2.read(1, 100 * MB)
        sim2.run_until_complete(done2)
        assert sim2.now > healthy * 5

        fs2.set_brownout()  # reset to healthy
        assert fs2.latency_factor == 1.0
        assert fs2.bw_factor == 1.0

    def test_rejects_nonpositive_factors(self):
        _, fs = self.make_fs()
        with pytest.raises(SimulationError):
            fs.set_brownout(latency_factor=0.0)
        with pytest.raises(SimulationError):
            fs.set_brownout(bw_factor=-1.0)


class TestSlowNode:
    def test_scales_future_runtimes(self):
        sim, network, cluster = make_net()
        node = next(iter(cluster.workers.values()))
        base = node.scale_runtime(10.0)
        cluster.slow_node(node, 4.0)
        assert node.scale_runtime(10.0) == pytest.approx(base * 4.0)

    def test_rejects_nonpositive_slowdown(self):
        sim, network, cluster = make_net()
        node = next(iter(cluster.workers.values()))
        with pytest.raises(ValueError):
            cluster.slow_node(node, 0.0)

    def test_preempt_reason_is_recorded(self):
        sim, network, cluster = make_net()
        node = next(iter(cluster.workers.values()))
        cluster.preempt(node, reason="blackout")
        assert not node.alive
        kinds = [r.kind for r in cluster.trace.worker_events]
        assert "blackout" in kinds
