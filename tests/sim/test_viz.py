"""Tests for ASCII trace visualisation."""

import numpy as np
import pytest

from repro.sim.viz import render_gantt, render_heatmap, render_timeline


class TestHeatmap:
    def test_small_matrix(self):
        mat = np.array([[0.0, 10.0], [0.0, 0.0]])
        out = render_heatmap(mat, title="T")
        assert out.startswith("T")
        lines = out.splitlines()
        assert len(lines) == 4  # title + header + 2 rows
        # the hot cell is the densest shade, zeros are blank
        assert "@" in lines[2]
        assert lines[3].strip() == ""

    def test_downsampling(self):
        mat = np.zeros((100, 100))
        mat[0, 99] = 5.0
        out = render_heatmap(mat, max_cells=10)
        body = out.splitlines()[1:]  # drop the src\dst header
        assert len(body) == 10

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            render_heatmap(np.zeros((2, 3)))

    def test_all_zero(self):
        out = render_heatmap(np.zeros((3, 3)))
        assert "@" not in out

    def test_non_divisible_downsampling_keeps_trailing_block(self):
        # 101 nodes at max_cells=10 -> factor 11, last block is 2 wide;
        # a hot corner cell must survive into the shrunken picture
        mat = np.zeros((101, 101))
        mat[100, 100] = 1e9
        out = render_heatmap(mat, max_cells=10)
        body = out.splitlines()[1:]
        assert any("@" in line for line in body)
        assert "@" in body[-1]  # in the final (partial) block row

    def test_downsampled_row_count_non_divisible(self):
        for n in (41, 100, 101, 201):
            out = render_heatmap(np.zeros((n, n)), max_cells=40)
            factor = int(np.ceil(n / 40))
            body = out.splitlines()[1:]
            assert len(body) == int(np.ceil(n / factor))

    def test_downsampling_preserves_block_sums(self):
        # block sums drive the shades: a cell in the interior and one
        # in the trailing partial block get the same shade when equal
        mat = np.zeros((25, 25))
        mat[0, 0] = 7.0
        mat[24, 24] = 7.0
        out = render_heatmap(mat, max_cells=10, log_scale=False)
        body = out.splitlines()[1:]
        assert body[0].strip()[0] == body[-1].strip()[-1] == "@"


class TestTimeline:
    def test_shape(self):
        ts = np.array([0.0, 5.0, 10.0])
        values = np.array([0.0, 10.0, 0.0])
        out = render_timeline(ts, values, width=20, height=5,
                              title="conc")
        lines = out.splitlines()
        assert lines[0] == "conc"
        assert any("#" in line for line in lines)

    def test_empty(self):
        out = render_timeline([], [], title="x")
        assert "(empty)" in out

    def test_peak_visible_at_top(self):
        ts = np.array([0.0, 1.0, 2.0, 3.0])
        values = np.array([1.0, 5.0, 10.0, 10.0])
        out = render_timeline(ts, values, width=20, height=4)
        top_row = out.splitlines()[0]
        assert "#" in top_row

    def test_footer_shows_time_extent(self):
        out = render_timeline([0.0, 50.0], [1.0, 0.0], width=30,
                              height=3)
        assert "t=50s" in out.splitlines()[-1].replace(" ", "")

    def test_constant_zero_series(self):
        out = render_timeline([0.0, 10.0], [0.0, 0.0], width=20,
                              height=4)
        assert "#" not in out


class TestGantt:
    def test_rows_rendered(self):
        rows = {1: [(0.0, 5.0)], 2: [(5.0, 10.0)]}
        out = render_gantt(rows, width=20, title="g")
        lines = out.splitlines()
        assert lines[0] == "g"
        assert lines[1].startswith("  w1")
        # worker 1 busy early, worker 2 late
        assert lines[1].index("#") < lines[2].index("#")

    def test_sampling_many_workers(self):
        rows = {i: [(0.0, 1.0)] for i in range(100)}
        out = render_gantt(rows, max_rows=10)
        assert len(out.splitlines()) == 11  # 10 rows + footer

    def test_empty(self):
        assert "(no tasks)" in render_gantt({}, title="x")
