"""Unit tests for trace recording and figure-level aggregations."""

import numpy as np
import pytest

from repro.sim.trace import (
    TaskRecord,
    TraceRecorder,
    TransferRecord,
    step_series,
)


def record(trace, task_id, worker, ready, dispatch, start, end,
           category="proc", ok=True):
    trace.task(TaskRecord(task_id=task_id, category=category, worker=worker,
                          t_ready=ready, t_dispatch=dispatch,
                          t_start=start, t_end=end, ok=ok))


class TestStepSeries:
    def test_empty(self):
        ts, levels = step_series([], [])
        assert list(ts) == [0.0]
        assert list(levels) == [0.0]

    def test_basic_cumsum(self):
        ts, levels = step_series([1, 3, 5], [1, 1, -2])
        assert list(ts) == [1, 3, 5]
        assert list(levels) == [1, 2, 0]

    def test_merges_identical_times(self):
        ts, levels = step_series([2, 2, 2], [1, 1, 1])
        assert list(ts) == [2]
        assert list(levels) == [3]

    def test_unsorted_input(self):
        ts, levels = step_series([5, 1, 3], [-2, 1, 1])
        assert list(levels) == [1, 2, 0]

    def test_extends_to_t_end(self):
        ts, levels = step_series([1], [1], t_end=10)
        assert ts[-1] == 10
        assert levels[-1] == 1


class TestTaskAggregations:
    def test_durations_by_category(self):
        trace = TraceRecorder()
        record(trace, 1, 1, 0, 0, 1, 4, category="proc")
        record(trace, 2, 2, 0, 0, 1, 2, category="accum")
        assert list(trace.task_durations("proc")) == [3]
        assert list(trace.task_durations("accum")) == [1]
        assert sorted(trace.task_durations()) == [1, 3]

    def test_failed_tasks_excluded_by_default(self):
        trace = TraceRecorder()
        record(trace, 1, 1, 0, 0, 0, 5, ok=False)
        assert len(trace.task_durations()) == 0
        assert len(trace.task_durations(ok_only=False)) == 1

    def test_makespan_tracks_latest_end(self):
        trace = TraceRecorder()
        record(trace, 1, 1, 0, 0, 0, 5)
        record(trace, 2, 1, 0, 0, 2, 17)
        assert trace.makespan == 17

    def test_concurrency_series(self):
        trace = TraceRecorder()
        record(trace, 1, 1, 0, 0, 0, 10)
        record(trace, 2, 2, 0, 0, 5, 15)
        ts, levels = trace.concurrency_series()
        sampled = trace.sample_series(ts, levels, [1, 7, 12, 20])
        assert list(sampled) == [1, 2, 1, 0]

    def test_waiting_series(self):
        trace = TraceRecorder()
        # ready at 0, starts at 5
        record(trace, 1, 1, 0, 1, 5, 10)
        ts, levels = trace.waiting_series()
        sampled = trace.sample_series(ts, levels, [2, 6])
        assert list(sampled) == [1, 0]

    def test_gantt_rows_sorted(self):
        trace = TraceRecorder()
        record(trace, 1, 3, 0, 0, 5, 6)
        record(trace, 2, 3, 0, 0, 1, 2)
        rows = trace.gantt()
        assert rows[3] == [(1, 2), (5, 6)]

    def test_utilization(self):
        trace = TraceRecorder()
        record(trace, 1, 1, 0, 0, 0, 10)  # one slot busy 10 of 10s
        assert trace.utilization(n_slots=2) == pytest.approx(0.5)

    def test_summary_keys(self):
        trace = TraceRecorder()
        record(trace, 1, 1, 0, 0, 0, 4)
        summary = trace.summary()
        assert summary["tasks"] == 1
        assert summary["makespan"] == 4
        assert summary["mean_exec"] == 4


class TestTransferAggregations:
    def test_matrix_shape_and_sum(self):
        trace = TraceRecorder()
        trace.transfer(TransferRecord(0, 1, 100, 0, 1))
        trace.transfer(TransferRecord(1, 2, 50, 0, 1, kind="peer"))
        mat = trace.transfer_matrix(3)
        assert mat.shape == (3, 3)
        assert mat.sum() == 150

    def test_matrix_kind_filter(self):
        trace = TraceRecorder()
        trace.transfer(TransferRecord(0, 1, 100, 0, 1, kind="data"))
        trace.transfer(TransferRecord(0, 1, 7, 0, 1, kind="task"))
        assert trace.transfer_matrix(2, kinds=["task"]).sum() == 7

    def test_negative_pseudonodes_skipped(self):
        trace = TraceRecorder()
        trace.transfer(TransferRecord(-1, 1, 100, 0, 1))
        assert trace.transfer_matrix(2).sum() == 0


class TestCacheAggregations:
    def test_cache_series_per_worker(self):
        trace = TraceRecorder()
        trace.cache(1, 0.0, 100)
        trace.cache(1, 5.0, -40)
        trace.cache(2, 1.0, 7)
        ts, levels = trace.cache_series(1)
        assert list(levels)[:2] == [100, 60]

    def test_peak_cache(self):
        trace = TraceRecorder()
        trace.cache(1, 0, 100)
        trace.cache(1, 1, 200)
        trace.cache(1, 2, -250)
        trace.cache(2, 0, 10)
        peaks = trace.peak_cache()
        assert peaks[1] == 300
        assert peaks[2] == 10

    def test_failures_listed(self):
        trace = TraceRecorder()
        trace.worker(3, 10.0, "preempt")
        trace.worker(4, 11.0, "spawn")
        assert [e.worker for e in trace.failures()] == [3]


class TestEdgeCases:
    def test_step_series_interleaved_unsorted_duplicates(self):
        # unsorted AND duplicated times together: stable merge first
        ts, levels = step_series([4, 1, 4, 1], [1, 2, -1, 3])
        assert list(ts) == [1, 4]
        assert list(levels) == [5, 5]

    def test_summary_on_empty_trace(self):
        summary = TraceRecorder().summary()
        assert summary["tasks"] == 0
        assert summary["makespan"] == 0
        assert summary["mean_exec"] == 0
        assert summary["bytes_moved"] == 0
        assert summary["preemptions"] == 0

    def test_transfer_matrix_manager_node_traffic(self):
        # node 0 is the manager; its row/column must participate
        trace = TraceRecorder()
        trace.transfer(TransferRecord(0, 2, 100, 0, 1, kind="data"))
        trace.transfer(TransferRecord(2, 0, 30, 1, 2, kind="result"))
        mat = trace.transfer_matrix(3)
        assert mat[0, 2] == 100
        assert mat[2, 0] == 30
        assert mat.sum() == 130

    def test_cache_series_empty_worker(self):
        trace = TraceRecorder()
        ts, levels = trace.cache_series(99)
        assert list(levels) == [0.0]

    def test_utilization_zero_makespan(self):
        assert TraceRecorder().utilization(4) == 0.0


class TestBusForwarding:
    def test_records_forwarded_as_events(self):
        from repro.obs import EventBus

        bus = EventBus()
        seen = []
        bus.subscribe_all(lambda type_, t, fields: seen.append(type_))
        trace = TraceRecorder(bus=bus)
        record(trace, 1, 2, 0, 0, 1, 4)
        trace.transfer(TransferRecord(0, 1, 10, 0, 1))
        trace.cache(1, 0.0, 100, name="f")
        trace.cache(1, 1.0, -100, name="f")
        trace.worker(1, 0.0, "spawn")
        trace.worker(1, 5.0, "preempt")
        trace.worker(1, 6.0, "remove")
        assert seen == ["EXEC_END", "TRANSFER", "CACHE_PUT",
                        "CACHE_EVICT", "WORKER_JOIN", "WORKER_PREEMPT",
                        "WORKER_LEAVE"]

    def test_no_bus_is_silent(self):
        trace = TraceRecorder()
        record(trace, 1, 2, 0, 0, 1, 4)  # must not raise
        assert trace.bus is None
