"""Tests for the wire (serialization) layer."""

import numpy as np
import pytest

from repro.engine import wire
from repro.hep.hist import Hist


class TestWire:
    def test_roundtrip_builtin(self):
        payload = {"a": [1, 2.5, "x"], "b": (None, True)}
        assert wire.loads(wire.dumps(payload)) == payload

    def test_roundtrip_numpy(self):
        arr = np.arange(10.0)
        out = wire.loads(wire.dumps(arr))
        assert np.array_equal(out, arr)

    def test_roundtrip_histogram(self):
        hist = Hist.new.Reg(10, 0, 1, name="x").Double()
        hist.fill(x=[0.5, 0.7])
        assert wire.loads(wire.dumps(hist)) == hist

    def test_unpicklable_raises_wire_error(self):
        with pytest.raises(wire.WireError, match="cannot serialise"):
            wire.dumps(open(__file__))

    def test_corrupt_payload_raises_wire_error(self):
        with pytest.raises(wire.WireError, match="cannot deserialise"):
            wire.loads(b"not a pickle")

    def test_payload_size_tracks_content(self):
        small = wire.payload_size(np.zeros(10))
        large = wire.payload_size(np.zeros(10_000))
        assert large > small
        assert small > 0

    def test_functions_serializable(self):
        from repro.dag.partition import accumulate_list

        out = wire.loads(wire.dumps(accumulate_list))
        assert out is accumulate_list  # module-level: pickled by ref
