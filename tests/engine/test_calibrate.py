"""Tests for the real-machine cost measurements."""

import pytest

from repro.engine.calibrate import (
    calibrate,
    measure_fork_call,
    measure_serialization,
    measure_spawn_startup,
)


@pytest.mark.slow
class TestCalibrate:
    def test_spawn_startup_positive_and_sane(self):
        startup = measure_spawn_startup(repeats=1)
        assert 0.005 < startup < 30.0

    def test_fork_call_cheaper_than_spawn(self):
        """The paper's core claim about serverless execution, measured
        for real: a fork invocation beats a fresh interpreter."""
        fork = measure_fork_call(repeats=5)
        spawn = measure_spawn_startup(repeats=1)
        assert fork < spawn

    def test_serialization_positive(self):
        assert measure_serialization(1_000_000) > 0

    def test_calibrate_keys(self):
        results = calibrate()
        assert set(results) == {"spawn_startup_s", "numpy_import_s",
                                "fork_call_s", "serialize_10mb_s"}
        assert all(v >= 0 for v in results.values())
