"""Tests for the real serverless library process."""

import math
import os
import time

import pytest

from repro.engine.library import FunctionCallError, Library, LibraryError


def double(x):
    return 2 * x


def boom():
    raise ValueError("physics is broken")


def slow_identity(x):
    time.sleep(0.2)
    return x


def get_pid():
    return os.getpid()


class TestLifecycle:
    def test_start_stop(self):
        lib = Library({"double": double}).start()
        assert lib.running
        lib.stop()
        assert not lib.running

    def test_context_manager(self):
        with Library({"double": double}) as lib:
            assert lib.call("double", 21).result(timeout=30) == 42

    def test_double_start_rejected(self):
        with Library({"double": double}) as lib:
            with pytest.raises(LibraryError):
                lib.start()

    def test_call_before_start_rejected(self):
        lib = Library({"double": double})
        with pytest.raises(LibraryError):
            lib.call("double", 1)

    def test_empty_functions_rejected(self):
        with pytest.raises(LibraryError):
            Library({})

    def test_bad_slots_rejected(self):
        with pytest.raises(LibraryError):
            Library({"double": double}, slots=0)

    def test_stop_idempotent(self):
        lib = Library({"double": double}).start()
        lib.stop()
        lib.stop()


class TestInvocation:
    def test_basic_call(self):
        with Library({"double": double}) as lib:
            assert lib.call("double", 5).result(timeout=30) == 10

    def test_kwargs(self):
        def power(base, exp=2):
            return base ** exp

        with Library({"power": power}) as lib:
            assert lib.call("power", 3, exp=3).result(timeout=30) == 27

    def test_unknown_function_rejected(self):
        with Library({"double": double}) as lib:
            with pytest.raises(LibraryError):
                lib.call("nope", 1)

    def test_many_sequential_calls(self):
        with Library({"double": double}) as lib:
            futures = [lib.call("double", i) for i in range(20)]
            assert [f.result(timeout=60) for f in futures] == [
                2 * i for i in range(20)]
            assert lib.calls_completed == 20

    def test_concurrent_calls_use_separate_processes(self):
        with Library({"pid": get_pid}, slots=4) as lib:
            pids = {lib.call("pid").result(timeout=30) for _ in range(6)}
        # Fork per invocation: children have distinct pids, none is ours.
        assert os.getpid() not in pids
        assert len(pids) >= 2

    def test_exception_propagates(self):
        with Library({"boom": boom}) as lib:
            future = lib.call("boom")
            with pytest.raises(FunctionCallError, match="physics"):
                future.result(timeout=30)

    def test_failure_does_not_kill_library(self):
        with Library({"boom": boom, "double": double}) as lib:
            with pytest.raises(FunctionCallError):
                lib.call("boom").result(timeout=30)
            assert lib.call("double", 4).result(timeout=30) == 8

    def test_slots_limit_respected_without_deadlock(self):
        with Library({"slow": slow_identity}, slots=2) as lib:
            futures = [lib.call("slow", i) for i in range(5)]
            assert [f.result(timeout=60) for f in futures] == list(range(5))


class TestImportHoisting:
    def test_hoisted_module_available(self):
        def use_math(x):
            import math  # resolves instantly: already in sys.modules
            return math.sqrt(x)

        with Library({"f": use_math}, import_modules=["math"],
                     hoisting=True) as lib:
            assert lib.call("f", 9).result(timeout=30) == 3

    def test_unhoisted_mode_still_works(self):
        def use_math(x):
            import math
            return math.sqrt(x)

        with Library({"f": use_math}, import_modules=["math"],
                     hoisting=False) as lib:
            assert lib.call("f", 16).result(timeout=30) == 4

    def test_numpy_roundtrip(self):
        import numpy as np

        def norm(values):
            import numpy
            return float(numpy.linalg.norm(values))

        with Library({"norm": norm}, import_modules=["numpy"]) as lib:
            out = lib.call("norm", np.array([3.0, 4.0])).result(timeout=60)
            assert out == pytest.approx(5.0)

    def test_stop_fails_pending_futures(self):
        lib = Library({"slow": slow_identity}, slots=1).start()
        futures = [lib.call("slow", i) for i in range(3)]
        time.sleep(0.05)
        lib.stop()
        outcomes = []
        for f in futures:
            try:
                outcomes.append(f.result(timeout=5))
            except LibraryError:
                outcomes.append("failed")
        assert "failed" in outcomes or len(outcomes) == 3


class TestObservability:
    def test_lifecycle_events_on_bus(self):
        from repro.obs.events import (
            FUNCTION_CALL,
            FUNCTION_RESULT,
            LIBRARY_START,
            EventBus,
        )

        bus = EventBus()
        seen = []
        bus.subscribe_all(lambda ty, t, f: seen.append((ty, f)))
        with Library({"double": double}, name="obs-lib",
                     bus=bus) as lib:
            assert lib.call("double", 21).result(timeout=60) == 42
        types = [ty for ty, _ in seen]
        assert types[0] == LIBRARY_START
        assert FUNCTION_CALL in types
        assert FUNCTION_RESULT in types
        call = dict(seen)[FUNCTION_CALL]
        assert call["function"] == "double"
        assert call["library"] == "obs-lib"
        result = dict(seen)[FUNCTION_RESULT]
        assert result["ok"] is True

    def test_failed_call_marked_not_ok(self):
        from repro.obs.events import FUNCTION_RESULT, EventBus

        bus = EventBus()
        results = []
        bus.subscribe(FUNCTION_RESULT,
                      lambda ty, t, f: results.append(f))
        with Library({"boom": boom}, bus=bus) as lib:
            with pytest.raises(FunctionCallError):
                lib.call("boom").result(timeout=60)
        assert results and results[0]["ok"] is False

    def test_default_bus_is_null(self):
        lib = Library({"double": double})
        assert lib.bus.enabled is False
