"""Tests for graph executors and the DaskVine facade."""

import time

import pytest

from repro.dag.daskvine import DaskVine
from repro.dag.delayed import delayed
from repro.dag.graph import TaskGraph
from repro.engine.local import (
    FunctionCallPool,
    SerialExecutor,
    StandardTaskPool,
    run_graph,
)


def inc(x):
    return x + 1


def add(x, y):
    return x + y


def total(xs):
    return sum(xs)


def fail(x):
    raise RuntimeError("task failed")


DIAMOND = {
    "a": 1,
    "b": (inc, "a"),
    "c": (inc, "a"),
    "d": (add, "b", "c"),
}


class TestSerialExecutor:
    def test_diamond(self):
        out = SerialExecutor().execute(TaskGraph(DIAMOND))
        assert out == {"d": 4}


class TestRunGraph:
    def test_with_inline_futures(self):
        from concurrent.futures import Future

        def submit(func, args):
            f = Future()
            f.set_result(func(*args))
            return f

        out = run_graph(TaskGraph(DIAMOND), submit, max_in_flight=2)
        assert out == {"d": 4}

    def test_task_failure_propagates(self):
        from concurrent.futures import Future

        def submit(func, args):
            f = Future()
            try:
                f.set_result(func(*args))
            except Exception as exc:
                f.set_exception(exc)
            return f

        graph = TaskGraph({"a": 1, "b": (fail, "a")})
        with pytest.raises(RuntimeError, match="task failed"):
            run_graph(graph, submit, max_in_flight=1)

    def test_literal_and_alias_keys(self):
        from concurrent.futures import Future

        def submit(func, args):
            f = Future()
            f.set_result(func(*args))
            return f

        graph = TaskGraph({"x": 41, "y": "x", "z": (inc, "y")},
                          targets=["z"])
        assert run_graph(graph, submit, 4) == {"z": 42}


class TestFunctionCallPool:
    def test_diamond(self):
        out = FunctionCallPool(slots=2).execute(TaskGraph(DIAMOND))
        assert out == {"d": 4}

    def test_wide_graph(self):
        graph = {f"x{i}": (inc, i) for i in range(12)}
        graph["sum"] = (total, [f"x{i}" for i in range(12)])
        out = FunctionCallPool(slots=4).execute(
            TaskGraph(graph, targets=["sum"]))
        assert out["sum"] == sum(range(1, 13))

    def test_failure_propagates(self):
        graph = TaskGraph({"a": 1, "b": (fail, "a")})
        with pytest.raises(Exception, match="task failed"):
            FunctionCallPool(slots=1).execute(graph)

    def test_pure_literal_graph(self):
        out = FunctionCallPool().execute(TaskGraph({"a": 7}))
        assert out == {"a": 7}

    def test_bad_slots(self):
        with pytest.raises(ValueError):
            FunctionCallPool(slots=0)


@pytest.mark.slow
class TestStandardTaskPool:
    def test_small_graph(self):
        graph = TaskGraph({"a": (inc, 0), "b": (inc, "a")})
        out = StandardTaskPool(max_workers=2).execute(graph)
        assert out == {"b": 2}

    def test_failure_propagates(self):
        graph = TaskGraph({"b": (fail, 1)})
        with pytest.raises(RuntimeError, match="task failed"):
            StandardTaskPool(max_workers=1).execute(graph)

    def test_bad_workers(self):
        with pytest.raises(ValueError):
            StandardTaskPool(max_workers=0)


class TestDaskVine:
    def test_compute_delayed_serial(self):
        lazy = delayed(add)(delayed(inc)(1), 3)
        manager = DaskVine(name="m")
        assert manager.compute(lazy, task_mode="serial") == 5

    def test_compute_graph_function_calls(self):
        manager = DaskVine(cores=2)
        out = manager.compute(TaskGraph(DIAMOND),
                              task_mode="function-calls",
                              lib_resources={"slots": 2})
        assert out == 4
        assert manager.last_stats["task_mode"] == "function-calls"

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            DaskVine().compute(TaskGraph(DIAMOND), task_mode="quantum")

    def test_bad_input_rejected(self):
        with pytest.raises(TypeError):
            DaskVine().compute(42)

    def test_reduction_rewrite_applied(self):
        from repro.dag.optimize import associative

        graph = {f"x{i}": i for i in range(16)}
        graph["sum"] = (total_assoc, [f"x{i}" for i in range(16)])
        g = TaskGraph(graph, targets=["sum"])
        manager = DaskVine()
        out = manager.compute(g, task_mode="serial", reduction_arity=2)
        assert out == sum(range(16))
        assert manager.last_stats["tasks"] > len(g)


from repro.dag.optimize import associative  # noqa: E402


@associative
def total_assoc(xs):
    return sum(xs)


class TestThreadPool:
    def test_diamond(self):
        from repro.engine.local import ThreadPool

        out = ThreadPool(max_workers=2).execute(TaskGraph(DIAMOND))
        assert out == {"d": 4}

    def test_failure_propagates(self):
        from repro.engine.local import ThreadPool

        graph = TaskGraph({"b": (fail, 1)})
        with pytest.raises(RuntimeError, match="task failed"):
            ThreadPool(max_workers=1).execute(graph)

    def test_bad_workers(self):
        from repro.engine.local import ThreadPool

        with pytest.raises(ValueError):
            ThreadPool(max_workers=0)


class TestDaskVineCache:
    def test_compute_with_cache_replays(self):
        from repro.dag.cache import GraphCache

        cache = GraphCache()
        manager = DaskVine()
        graph = TaskGraph(DIAMOND)
        assert manager.compute(graph, cache=cache) == 4
        first_misses = cache.misses
        assert manager.compute(graph, cache=cache) == 4
        assert cache.misses == first_misses
        assert manager.last_stats["task_mode"] == "cached"
        assert cache.hits > 0
