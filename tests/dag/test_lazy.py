"""Tests for the lazy columnar expression layer (Fig 4 fidelity)."""

import numpy as np
import pytest

from repro.dag.daskvine import DaskVine
from repro.dag.lazy import LazyColumn, LazyEvents, LazyHist
from repro.hep.datasets import write_dataset
from repro.hep.hist import Hist
from repro.hep.nanoevents import NanoEventsFactory


@pytest.fixture(scope="module")
def chunks(tmp_path_factory):
    directory = tmp_path_factory.mktemp("lazy")
    paths = write_dataset(str(directory), "dv3", n_files=2,
                          events_per_file=1_000, seed=31,
                          basket_size=250)
    return NanoEventsFactory.from_root(paths, chunks_per_file=4)


@pytest.fixture
def events(chunks):
    return LazyEvents(chunks)


def eager_met(chunks):
    return np.concatenate([c.load().MET.pt for c in chunks])


class TestLazyColumns:
    def test_attribute_chain_evaluates(self, events, chunks):
        met = events.MET.pt
        assert isinstance(met, LazyColumn)
        first = met.evaluate_chunk(0)
        assert np.array_equal(first, chunks[0].load().MET.pt)

    def test_arithmetic(self, events, chunks):
        doubled = events.MET.pt * 2 + 1
        expected = chunks[0].load().MET.pt * 2 + 1
        assert np.allclose(doubled.evaluate_chunk(0), expected)

    def test_comparison_and_mask(self, events, chunks):
        good = events.Jet[events.Jet.pt > 40]
        eager = chunks[0].load()
        expected = eager.Jet[eager.Jet.pt > 40]
        got = good.evaluate_chunk(0)
        assert got.pt.tolist() == expected.pt.tolist()

    def test_abs_and_combined_cuts(self, events, chunks):
        selected = events.Jet[(events.Jet.pt > 30)
                              & (abs(events.Jet.eta) < 2.0)]
        eager = chunks[0].load()
        expected = eager.Jet[(eager.Jet.pt > 30)
                             & (abs(eager.Jet.eta) < 2.0)]
        assert (selected.pt.evaluate_chunk(0).tolist()
                == expected.pt.tolist())

    def test_method_deferral(self, events, chunks):
        total = events.Jet.pt.method("sum")
        expected = chunks[0].load().Jet.pt.sum()
        assert np.allclose(total.evaluate_chunk(0), expected)

    def test_mixed_datasets_rejected(self, events, chunks):
        other = LazyEvents(chunks[:2])
        with pytest.raises(ValueError, match="different datasets"):
            events.MET.pt + other.MET.pt

    def test_empty_dataset_rejected(self):
        with pytest.raises(ValueError):
            LazyEvents([])


class TestLazyHist:
    def test_paper_fig4_shape(self, events, chunks):
        """The exact code shape of the paper's sample application."""
        hist = (LazyHist.new.Reg(100, 0, 200, name="met")
                .Double()
                .fill(events.MET.pt))
        result = hist.compute()
        expected = Hist.new.Reg(100, 0, 200, name="met").Double()
        expected.fill(met=eager_met(chunks))
        assert result == expected

    def test_compute_via_daskvine(self, events, chunks):
        hist = (LazyHist.new.Reg(50, 0, 150, name="met")
                .Double()
                .fill(events.MET.pt))
        manager = DaskVine(name="lazy", cores=2)
        result = manager.compute(hist, task_mode="function-calls",
                                 lib_resources={"slots": 2})
        expected = Hist.new.Reg(50, 0, 150, name="met").Double()
        expected.fill(met=eager_met(chunks))
        assert result == expected

    def test_selection_fill(self, events, chunks):
        hist = (LazyHist.new.Reg(40, 0, 400, name="pt").Double()
                .fill(events.Jet[events.Jet.pt > 50].pt))
        result = hist.compute()
        eager = [c.load() for c in chunks]
        flat = np.concatenate(
            [e.Jet[e.Jet.pt > 50].pt.content for e in eager])
        assert result.sum(flow=True) == len(flat)

    def test_weighted_fill(self, events, chunks):
        hist = (LazyHist.new.Reg(10, 0, 100, name="met").Weight()
                .fill(events.MET.pt, weight=events.genWeight))
        result = hist.compute()
        assert result.sum(flow=True) == pytest.approx(
            sum(c.nevents for c in chunks))
        assert result.variances() is not None

    def test_multi_axis_named_fill(self, events):
        hist = (LazyHist.new.Reg(10, 0, 100, name="met")
                .Reg(8, 0, 8, name="njet").Double()
                .fill(met=events.MET.pt,
                      njet=events.Jet.counts))
        # Jet.counts is a property on JaggedRecord -> works via attr
        result = hist.compute()
        assert result.sum(flow=True) > 0

    def test_graph_shape(self, events, chunks):
        hist = (LazyHist.new.Reg(10, 0, 100, name="met").Double()
                .fill(events.MET.pt))
        graph = hist.to_graph(reduction_arity=2)
        fill_tasks = [k for k in graph.graph if "lazyfill" in str(k)]
        assert len(fill_tasks) == len(chunks)
        assert len(graph.targets) == 1

    def test_fill_without_columns_rejected(self, events):
        hist = LazyHist.new.Reg(10, 0, 1, name="x").Double()
        with pytest.raises(ValueError, match="nothing filled"):
            hist.to_graph()

    def test_eager_values_rejected(self, events):
        hist = LazyHist.new.Reg(10, 0, 1, name="x").Double()
        with pytest.raises(TypeError, match="lazy columns"):
            hist.fill(x=np.zeros(3))

    def test_wrong_axis_name_rejected(self, events):
        hist = LazyHist.new.Reg(10, 0, 1, name="x").Double()
        with pytest.raises(TypeError, match="missing fill column"):
            hist.fill(y=events.MET.pt)

    def test_chunking_invariance(self, chunks, tmp_path_factory):
        """Same dataset, different chunking: identical histogram."""
        directory = tmp_path_factory.mktemp("lazy2")
        paths = write_dataset(str(directory), "dv3", n_files=2,
                              events_per_file=1_000, seed=31,
                              basket_size=250)
        coarse = LazyEvents(NanoEventsFactory.from_root(
            paths, chunks_per_file=1))
        fine = LazyEvents(NanoEventsFactory.from_root(
            paths, chunks_per_file=4))
        h1 = (LazyHist.new.Reg(20, 0, 200, name="met").Double()
              .fill(coarse.MET.pt)).compute()
        h2 = (LazyHist.new.Reg(20, 0, 200, name="met").Double()
              .fill(fine.MET.pt)).compute()
        assert h1 == h2
