"""Unit and property tests for graph optimizations."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dag.graph import TaskGraph
from repro.dag.optimize import (
    associative,
    cull,
    fuse_linear,
    is_associative,
    rewrite_reductions,
    tree_reduce,
)


def inc(x):
    return x + 1


@associative
def total(xs):
    return sum(xs)


class TestAssociativeRegistry:
    def test_registered(self):
        assert is_associative(total)
        assert not is_associative(inc)


class TestCull:
    def test_drops_unreachable(self):
        g = TaskGraph({
            "a": 1,
            "b": (inc, "a"),
            "orphan": (inc, "a"),
        }, targets=["b"])
        culled = cull(g)
        assert "orphan" not in culled
        assert culled.execute() == {"b": 2}

    def test_keeps_transitive_deps(self):
        g = TaskGraph({
            "a": 1, "b": (inc, "a"), "c": (inc, "b"),
        }, targets=["c"])
        culled = cull(g)
        assert set(culled.graph) == {"a", "b", "c"}


class TestFuseLinear:
    def test_fuses_chain(self):
        g = TaskGraph({
            "a": (inc, 0),
            "b": (inc, "a"),
            "c": (inc, "b"),
        }, targets=["c"])
        fused = fuse_linear(g)
        assert len(fused) < len(g)
        assert fused.execute() == {"c": 3}

    def test_does_not_fuse_shared_node(self):
        g = TaskGraph({
            "a": (inc, 0),
            "b": (inc, "a"),
            "c": (inc, "a"),
            "d": (total, ["b", "c"]),
        }, targets=["d"])
        fused = fuse_linear(g)
        assert "a" in fused.graph  # two consumers: must stay
        assert fused.execute() == {"d": 4}

    def test_targets_never_fused_away(self):
        g = TaskGraph({
            "a": (inc, 0),
            "b": (inc, "a"),
        }, targets=["a", "b"])
        fused = fuse_linear(g)
        assert "a" in fused.graph and "b" in fused.graph


class TestTreeReduce:
    def test_single_input(self):
        fragment, final = tree_reduce(["a"], total)
        g = TaskGraph({"a": 5, **fragment}, targets=[final])
        assert g.execute()[final] == 5

    def test_binary_tree_structure(self):
        inputs = [f"x{i}" for i in range(8)]
        fragment, final = tree_reduce(inputs, total, arity=2)
        # 8 leaves -> 4 + 2 + 1 internal nodes
        assert len(fragment) == 7
        base = {f"x{i}": i for i in range(8)}
        g = TaskGraph({**base, **fragment}, targets=[final])
        assert g.execute()[final] == sum(range(8))

    def test_max_fanin_bounded(self):
        inputs = [f"x{i}" for i in range(100)]
        for arity in (2, 4, 8):
            fragment, final = tree_reduce(inputs, total, arity=arity)
            for computation in fragment.values():
                assert len(computation[1]) <= arity

    def test_uneven_input_count(self):
        inputs = [f"x{i}" for i in range(7)]
        fragment, final = tree_reduce(inputs, total, arity=3)
        base = {f"x{i}": i for i in range(7)}
        g = TaskGraph({**base, **fragment}, targets=[final])
        assert g.execute()[final] == 21

    def test_bad_arity(self):
        with pytest.raises(ValueError):
            tree_reduce(["a"], total, arity=1)

    def test_empty_inputs(self):
        with pytest.raises(ValueError):
            tree_reduce([], total)

    @given(st.integers(1, 60), st.integers(2, 9))
    @settings(max_examples=40, deadline=None)
    def test_tree_equals_flat_for_any_shape(self, n, arity):
        inputs = [f"x{i}" for i in range(n)]
        base = {f"x{i}": i for i in range(n)}
        fragment, final = tree_reduce(inputs, total, arity=arity)
        g = TaskGraph({**base, **fragment}, targets=[final])
        assert g.execute()[final] == sum(range(n))


class TestRewriteReductions:
    def make_flat(self, n):
        graph = {f"x{i}": i for i in range(n)}
        graph["sum"] = (total, [f"x{i}" for i in range(n)])
        graph["result"] = (inc, "sum")
        return TaskGraph(graph, targets=["result"])

    def test_rewrites_wide_reduction(self):
        g = self.make_flat(20)
        rewritten = rewrite_reductions(g, arity=2)
        assert len(rewritten) > len(g)  # tree nodes added
        # max fan-in bounded by arity
        for key, computation in rewritten.graph.items():
            if isinstance(computation, tuple) and computation[0] is total:
                assert len(computation[1]) <= 2
        assert rewritten.execute() == {"result": sum(range(20)) + 1}

    def test_small_reduction_untouched(self):
        g = self.make_flat(2)
        rewritten = rewrite_reductions(g, arity=8)
        assert set(rewritten.graph) == set(g.graph)

    def test_non_associative_untouched(self):
        def fragile(xs):
            return xs[0]

        graph = {f"x{i}": i for i in range(10)}
        graph["head"] = (fragile, [f"x{i}" for i in range(10)])
        g = TaskGraph(graph, targets=["head"])
        rewritten = rewrite_reductions(g, arity=2)
        assert set(rewritten.graph) == set(g.graph)

    def test_literal_args_block_rewrite(self):
        graph = {"x0": 1,
                 "sum": (total, ["x0", 5])}  # 5 is a literal, not a key
        g = TaskGraph(graph, targets=["sum"])
        rewritten = rewrite_reductions(g, arity=2)
        assert set(rewritten.graph) == set(g.graph)

    def test_targets_preserved(self):
        g = self.make_flat(30)
        rewritten = rewrite_reductions(g, arity=4)
        assert rewritten.targets == g.targets
