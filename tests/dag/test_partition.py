"""Tests for the analysis-graph partitioner."""

import pytest

from repro.dag.graph import TaskGraph
from repro.dag.partition import build_analysis_graph
from repro.hep.datasets import write_dataset
from repro.hep.hist import Hist
from repro.hep.nanoevents import NanoEventsFactory
from repro.hep.processor import ProcessorABC, iterative_runner


class MetProcessor(ProcessorABC):
    def process(self, events):
        h = Hist.new.Reg(10, 0, 200, name="met").Double()
        h.fill(met=events.MET.pt)
        return {"met": h, "nevents": events.nevents}


@pytest.fixture(scope="module")
def chunks(tmp_path_factory):
    directory = tmp_path_factory.mktemp("data")
    paths = write_dataset(str(directory), "dv3", n_files=3,
                          events_per_file=400, seed=21, basket_size=100)
    return NanoEventsFactory.from_root(paths, chunks_per_file=4)


class TestBuildAnalysisGraph:
    def test_tree_graph_shape(self, chunks):
        g = build_analysis_graph(MetProcessor(), chunks, reduction_arity=2)
        proc_tasks = [k for k in g.graph if "proc" in str(k)]
        assert len(proc_tasks) == len(chunks) == 12
        # binary tree over 12 inputs has 11 internal nodes
        accum_tasks = [k for k in g.graph if "accum" in str(k)]
        assert len(accum_tasks) == 11

    def test_flat_graph_shape(self, chunks):
        g = build_analysis_graph(MetProcessor(), chunks,
                                 reduction_arity=None)
        accum_tasks = [k for k in g.graph if "accum" in str(k)]
        assert len(accum_tasks) == 1

    def test_flat_and_tree_agree(self, chunks):
        flat = build_analysis_graph(MetProcessor(), chunks,
                                    reduction_arity=None).execute()
        tree = build_analysis_graph(MetProcessor(), chunks,
                                    reduction_arity=3).execute()
        (flat_result,) = flat.values()
        (tree_result,) = tree.values()
        assert flat_result["met"] == tree_result["met"]
        assert flat_result["nevents"] == tree_result["nevents"]

    def test_matches_iterative_runner(self, chunks):
        reference = iterative_runner(MetProcessor(), list(chunks))
        g = build_analysis_graph(MetProcessor(), chunks, reduction_arity=4)
        (result,) = g.execute().values()
        assert result["met"] == reference["met"]
        assert result["nevents"] == reference["nevents"]

    def test_empty_chunks_rejected(self):
        with pytest.raises(ValueError):
            build_analysis_graph(MetProcessor(), [])

    def test_single_chunk(self, chunks):
        g = build_analysis_graph(MetProcessor(), chunks[:1],
                                 reduction_arity=2)
        (result,) = g.execute().values()
        assert result["nevents"] == chunks[0].nevents
