"""Unit tests for the delayed API."""

import pytest

from repro.dag.delayed import Delayed, delayed


@delayed
def add(a, b):
    return a + b


@delayed
def combine(items):
    return sum(items)


class TestDelayed:
    def test_simple_compute(self):
        assert add(1, 2).compute() == 3

    def test_composition(self):
        assert add(add(1, 2), add(3, 4)).compute() == 10

    def test_list_of_delayed(self):
        parts = [add(i, i) for i in range(5)]
        assert combine(parts).compute() == 20

    def test_graph_grows_per_call(self):
        d = add(add(1, 2), 3)
        assert len(d.dsk) == 2

    def test_keys_unique(self):
        a = add(1, 2)
        b = add(1, 2)
        assert a.key != b.key

    def test_kwargs_rejected(self):
        with pytest.raises(TypeError):
            add(1, b=2)

    def test_to_graph_targets(self):
        d = add(1, 2)
        graph = d.to_graph()
        assert graph.targets == [d.key]

    def test_decorator_with_name(self):
        @delayed(name="custom")
        def f(x):
            return x

        assert f(1).key.startswith("custom-")

    def test_nested_structure_args(self):
        d = combine([add(1, 1), 3, add(2, 2)])
        assert d.compute() == 9
