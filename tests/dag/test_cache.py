"""Tests for cross-iteration result caching."""

import pytest

from repro.dag.cache import GraphCache, cached_execute
from repro.dag.graph import TaskGraph

CALLS = []


def traced_inc(x):
    CALLS.append(("inc", x))
    return x + 1


def traced_sum(xs):
    CALLS.append(("sum", tuple(xs)))
    return sum(xs)


def traced_len(x):
    CALLS.append(("len", x))
    return len(x)


@pytest.fixture(autouse=True)
def clear_calls():
    CALLS.clear()


def make_graph(bump=0):
    graph = {f"x{i}": (traced_inc, i + bump) for i in range(4)}
    graph["total"] = (traced_sum, [f"x{i}" for i in range(4)])
    return TaskGraph(graph, targets=["total"])


class TestGraphCache:
    def test_first_run_executes_everything(self):
        cache = GraphCache()
        out = cached_execute(make_graph(), cache)
        assert out["total"] == 1 + 2 + 3 + 4
        assert len(CALLS) == 5
        assert cache.misses == 5 and cache.hits == 0

    def test_second_run_fully_cached(self):
        cache = GraphCache()
        cached_execute(make_graph(), cache)
        CALLS.clear()
        out = cached_execute(make_graph(), cache)
        assert out["total"] == 10
        assert CALLS == []  # nothing re-ran
        assert cache.hits == 5

    def test_partial_invalidation(self):
        """Changing one leaf re-runs that leaf and everything
        downstream of it, nothing else."""
        cache = GraphCache()
        cached_execute(make_graph(bump=0), cache)
        CALLS.clear()
        graph = {f"x{i}": (traced_inc, i) for i in range(4)}
        graph["x0"] = (traced_inc, 100)  # the changed cut
        graph["total"] = (traced_sum, [f"x{i}" for i in range(4)])
        out = cached_execute(TaskGraph(graph, targets=["total"]), cache)
        assert out["total"] == 101 + 2 + 3 + 4
        ran = [c[0] for c in CALLS]
        assert ran.count("inc") == 1   # only the changed leaf
        assert ran.count("sum") == 1   # and the reduction over it

    def test_eviction_bounds_entries(self):
        cache = GraphCache(max_entries=3)
        for bump in range(5):
            cached_execute(make_graph(bump=bump), cache)
        assert len(cache) <= 3

    def test_unpicklable_args_bypass_cache(self):
        cache = GraphCache()

        def use_handle(handle):
            return 42

        graph = TaskGraph({"v": (use_handle, open(__file__))},
                          targets=["v"])
        out = cached_execute(graph, cache)
        assert out["v"] == 42
        assert len(cache) == 0  # file handles are not keyable

    def test_clear(self):
        cache = GraphCache()
        cached_execute(make_graph(), cache)
        cache.clear()
        assert len(cache) == 0

    def test_bad_max_entries(self):
        with pytest.raises(ValueError):
            GraphCache(max_entries=0)


class TestMultiTenantSharing:
    """The result cache keys by tenant-visible lineage only: two
    tenants submitting the identical DAG share results, and one
    tenant's key names can never leak into another's signatures."""

    def make_tenant_graph(self, tenant):
        graph = {f"{tenant}/x{i}": (traced_inc, i) for i in range(4)}
        graph[f"{tenant}/total"] = (
            traced_sum, [f"{tenant}/x{i}" for i in range(4)])
        return TaskGraph(graph, targets=[f"{tenant}/total"])

    def test_identical_dags_share_results_across_tenants(self):
        """Key names never enter the digest -- only function identity,
        literal args and upstream lineage -- so bob's namespaced copy
        of alice's DAG replays entirely from her results."""
        cache = GraphCache()
        a = cached_execute(self.make_tenant_graph("alice"), cache)
        CALLS.clear()
        b = cached_execute(self.make_tenant_graph("bob"), cache)
        assert a["alice/total"] == b["bob/total"] == 10
        assert CALLS == []  # bob's run came entirely from alice's
        assert cache.hits == 5

    def test_merged_submissions_share_within_one_run(self):
        """A facility merging two tenants' identical subgraphs into
        one namespace executes each task once."""
        merged = {}
        for tenant in ("alice", "bob"):
            merged.update(self.make_tenant_graph(tenant).graph)
        cache = GraphCache()
        out = cached_execute(
            TaskGraph(merged, targets=["alice/total", "bob/total"]),
            cache)
        assert out["alice/total"] == out["bob/total"] == 10
        assert len(CALLS) == 5  # five tasks, not ten
        assert cache.hits == 5 and cache.misses == 5

    def test_literal_tuple_arg_is_not_foreign_lineage(self):
        """A literal tuple equal to another submitter's tuple-style
        key is a value, not a lineage reference: bob's task neither
        receives alice's result nor signs itself with her lineage."""
        merged = {
            ("alice", "x"): (traced_inc, 6),
            # bob's argument is DATA that happens to equal alice's key
            "bob/only": (traced_len, ("alice", "x")),
        }
        cache = GraphCache()
        out = cached_execute(
            TaskGraph(merged, targets=["bob/only"]), cache)
        assert out["bob/only"] == 2
        assert ("len", ("alice", "x")) in CALLS
        # and a rerun in isolation produces the same key -> cache hit
        CALLS.clear()
        again = cached_execute(
            TaskGraph({"bob/only": (traced_len, ("alice", "x"))},
                      targets=["bob/only"]), cache)
        assert again["bob/only"] == 2
        assert ("len", ("alice", "x")) not in CALLS


class TestRealAnalysisIteration:
    def test_changed_cut_reuses_unchanged_processing(self, tmp_path):
        """The near-interactive loop: identical re-run is ~free."""
        from repro.apps import DV3Processor
        from repro.dag.partition import build_analysis_graph
        from repro.hep import NanoEventsFactory, write_dataset

        paths = write_dataset(str(tmp_path), "dv3", 2, 500, seed=3,
                              basket_size=250)
        chunks = NanoEventsFactory.from_root(paths, chunks_per_file=2)
        cache = GraphCache()
        processor = DV3Processor()
        graph = build_analysis_graph(processor, chunks,
                                     reduction_arity=2)
        first = cached_execute(graph, cache)
        misses_first = cache.misses
        second = cached_execute(graph, cache)
        assert cache.misses == misses_first  # everything from cache
        (a,) = first.values()
        (b,) = second.values()
        assert a["dijet_mass"] == b["dijet_mass"]
