"""Unit tests for TaskGraph."""

import operator

import pytest

from repro.dag.graph import GraphError, TaskGraph, is_task, task_dependencies


def inc(x):
    return x + 1


def add(x, y):
    return x + y


def total(xs):
    return sum(xs)


class TestIsTask:
    def test_task_tuple(self):
        assert is_task((inc, 1))
        assert is_task((total, ["a", "b"]))

    def test_non_tasks(self):
        assert not is_task((1, 2))
        assert not is_task([inc, 1])
        assert not is_task("key")
        assert not is_task(())


class TestDependencies:
    def test_direct_keys(self):
        deps = task_dependencies((add, "a", "b"), {"a", "b", "c"})
        assert deps == {"a", "b"}

    def test_nested_lists(self):
        deps = task_dependencies((total, ["a", ["b", 5]]), {"a", "b"})
        assert deps == {"a", "b"}

    def test_literals_ignored(self):
        deps = task_dependencies((add, 1, "unknown"), {"a"})
        assert deps == set()

    def test_nested_task_args(self):
        deps = task_dependencies((add, (inc, "a"), "b"), {"a", "b"})
        assert deps == {"a", "b"}


class TestStructure:
    @pytest.fixture
    def diamond(self):
        return TaskGraph({
            "a": 1,
            "b": (inc, "a"),
            "c": (inc, "a"),
            "d": (add, "b", "c"),
        })

    def test_roots_leaves(self, diamond):
        assert diamond.roots() == ["a"]
        assert diamond.leaves() == ["d"]

    def test_default_targets_are_leaves(self, diamond):
        assert diamond.targets == ["d"]

    def test_dependents(self, diamond):
        deps = diamond.dependents()
        assert deps["a"] == {"b", "c"}
        assert deps["d"] == set()

    def test_toposort_respects_deps(self, diamond):
        order = diamond.toposort()
        assert order.index("a") < order.index("b") < order.index("d")
        assert order.index("c") < order.index("d")

    def test_len_contains(self, diamond):
        assert len(diamond) == 4
        assert "b" in diamond
        assert "z" not in diamond

    def test_cycle_detected(self):
        with pytest.raises(GraphError, match="cycle"):
            TaskGraph({"a": (inc, "b"), "b": (inc, "a")})

    def test_self_cycle_detected(self):
        with pytest.raises(GraphError, match="cycle"):
            TaskGraph({"a": (inc, "a")})

    def test_bad_target_rejected(self):
        with pytest.raises(GraphError, match="targets"):
            TaskGraph({"a": 1}, targets=["b"])

    def test_width_profile(self, diamond):
        assert diamond.width_profile() == [1, 2, 1]
        assert diamond.critical_path_length() == 3


class TestExecution:
    def test_diamond_value(self):
        g = TaskGraph({
            "a": 1,
            "b": (inc, "a"),
            "c": (inc, "a"),
            "d": (add, "b", "c"),
        })
        assert g.execute() == {"d": 4}

    def test_list_argument_resolution(self):
        g = TaskGraph({
            "x": 10,
            "y": 20,
            "s": (total, ["x", "y", 3]),
        })
        assert g.execute() == {"s": 33}

    def test_alias_key(self):
        g = TaskGraph({"a": 5, "b": "a"}, targets=["b"])
        assert g.execute() == {"b": 5}

    def test_inline_nested_task(self):
        g = TaskGraph({"a": 2, "b": (add, (inc, "a"), 10)})
        assert g.execute() == {"b": 13}

    def test_multiple_targets(self):
        g = TaskGraph({"a": 1, "b": (inc, "a"), "c": (inc, "b")},
                      targets=["b", "c"])
        assert g.execute() == {"b": 2, "c": 3}

    def test_operator_callables(self):
        g = TaskGraph({"a": 6, "b": 7, "c": (operator.mul, "a", "b")})
        assert g.execute()["c"] == 42

    def test_string_literal_not_conflated_with_key(self):
        g = TaskGraph({"word": (str.upper, "hello")})
        assert g.execute()["word"] == "HELLO"
