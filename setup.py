"""Setuptools shim.

`pip install -e .` requires the `wheel` package (PEP 660 editable
builds); on offline machines without it, install with::

    python setup.py develop

which achieves the same editable layout using only setuptools.
"""

from setuptools import setup

setup()
