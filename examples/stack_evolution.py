"""Stack evolution: Table I at laptop scale, in seconds of wall time.

Replays the paper's four application stacks (HDFS+WorkQueue ->
VAST+WorkQueue -> TaskVine tasks -> TaskVine serverless) on a scaled
DV3 workload (1/10 of DV3-Large on 20 workers) and prints the speedup
ladder plus where the bytes flowed in each configuration.

Run:  python examples/stack_evolution.py
"""

import dataclasses

from repro.bench.stacks import STACKS, run_stack
from repro.core.manager import MANAGER_NODE
from repro.hep.datasets import TABLE2


def main():
    spec = dataclasses.replace(
        TABLE2["DV3-Large"], name="DV3-Demo",
        n_tasks=1_700, input_bytes=120e9)
    print("workload: 1700 tasks, 120 GB input, 20 x 12-core workers\n")
    print(f"{'stack':8s} {'change':28s} {'runtime':>9s} "
          f"{'speedup':>8s} {'via manager':>12s} {'via peers':>10s}")

    baseline = None
    for number in (1, 2, 3, 4):
        result = run_stack(number, spec=spec, n_workers=20, seed=11)
        trace = result.trace
        manager_bytes = sum(
            t.nbytes for t in trace.transfers
            if MANAGER_NODE in (t.src, t.dst) and t.kind != "result")
        peer_bytes = sum(t.nbytes for t in trace.transfers
                         if t.kind == "peer")
        if baseline is None:
            baseline = result.makespan
        definition = STACKS[number]
        print(f"{definition.name:8s} {definition.change:28s} "
              f"{result.makespan:8.1f}s "
              f"{baseline / result.makespan:7.2f}x "
              f"{manager_bytes / 1e9:10.1f}GB "
              f"{peer_bytes / 1e9:8.1f}GB")

    print("\nthe pattern of Table I: new storage hardware alone is "
          "modest; moving data")
    print("management into the cluster (TaskVine) and shedding "
          "per-task startup")
    print("(serverless) deliver the order-of-magnitude reduction.")


if __name__ == "__main__":
    main()
