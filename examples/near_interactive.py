"""Near-interactive iteration: the paper's motivating scenario.

"No custom analysis code is correct the first time: it is common to run
an analysis many times, troubleshooting and refining the work until a
correct outcome is obtained. Reducing the iteration time is critical."
(Section I)

This example plays a physicist's refinement loop on the DV3 search:
three iterations that tighten the b-tag working point, each a full
re-run of the analysis over the dataset in serverless mode, completing
in seconds -- the "near-interactive" experience the reshaped stack
provides at cluster scale.

Run:  python examples/near_interactive.py
"""

import tempfile
import time

import numpy as np

from repro.apps import DV3Processor
from repro.dag import DaskVine, build_analysis_graph
from repro.hep import HIGGS_MASS, NanoEventsFactory, write_dataset


def significance(hist):
    """Toy S/sqrt(B): peak window counts vs sidebands."""
    values = hist.values()
    centers = hist.axes[0].centers
    window = values[(centers > 110) & (centers < 140)].sum()
    sideband = values[((centers > 80) & (centers < 110))
                      | ((centers > 140) & (centers < 170))].sum()
    return window / np.sqrt(max(sideband, 1.0))


def main():
    workdir = tempfile.mkdtemp(prefix="repro-iter-")
    print("preparing dataset (one-time cost)...")
    dataset = write_dataset(workdir, "dv3", n_files=5,
                            events_per_file=4_000, seed=13,
                            basket_size=1_000, signal_fraction=0.12)
    chunks = NanoEventsFactory.from_root(dataset, chunks_per_file=4)
    manager = DaskVine(name="iterate", cores=4)

    print(f"\n{'iteration':>9} {'b-tag cut':>10} {'candidates':>11} "
          f"{'peak (GeV)':>11} {'S/sqrt(B)':>10} {'wall (s)':>9}")
    for iteration, btag_cut in enumerate((0.5, 0.7, 0.85), start=1):
        processor = DV3Processor(btag_cut=btag_cut)
        graph = build_analysis_graph(processor, chunks,
                                     reduction_arity=4)
        start = time.time()
        result = manager.compute(graph, task_mode="function-calls",
                                 lib_resources={"slots": 4},
                                 import_modules=["numpy"])
        wall = time.time() - start
        hist = result["dijet_mass"]
        print(f"{iteration:>9} {btag_cut:>10.2f} "
              f"{result['cutflow']['bb_candidates']:>11} "
              f"{result.get('higgs_peak_gev', float('nan')):>11.1f} "
              f"{significance(hist):>10.2f} {wall:>9.2f}")

    print(f"\ntrue Higgs mass: {HIGGS_MASS:.0f} GeV.  Tightening the "
          f"working point trades candidates for purity;")
    print("each what-if is a full re-run of the analysis, and each "
          "completes in seconds.")


if __name__ == "__main__":
    main()
