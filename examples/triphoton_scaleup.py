"""RS-TriPhoton: real analysis locally + reshaping study at scale.

Part 1 runs the real RS-TriPhoton search on a synthetic dataset with an
injected X -> gamma a signal (m_X = 1000 GeV, m_a = 200 GeV) and prints
the reconstructed resonances.

Part 2 is the *reshaping* question of the paper: the same workflow's
shape (4000 tasks, 500 GB in, ~4 TB of partial histograms) is run on
the cluster simulator from 120 to 2400 cores, with the flat-vs-tree
reduction comparison of Fig 11 on top.

Run:  python examples/triphoton_scaleup.py
"""

import tempfile

from repro.apps import TriPhotonProcessor
from repro.bench import calibration as cal
from repro.bench.runners import build_environment, run_scheduler
from repro.bench.workloads import build_workflow
from repro.dag import build_analysis_graph
from repro.hep import (
    TRIPHOTON_MA,
    TRIPHOTON_MX,
    NanoEventsFactory,
    write_dataset,
)
from repro.hep.datasets import TABLE2


def run_real_analysis():
    workdir = tempfile.mkdtemp(prefix="repro-3g-")
    print("generating RS-TriPhoton dataset (10% signal)...")
    dataset = write_dataset(workdir, "triphoton", n_files=4,
                            events_per_file=4_000, seed=3,
                            basket_size=1_000, signal_fraction=0.10)
    chunks = NanoEventsFactory.from_root(dataset, chunks_per_file=4)
    graph = build_analysis_graph(TriPhotonProcessor(), chunks,
                                 reduction_arity=4)
    (result,) = graph.execute().values()
    cutflow = result["cutflow"]
    print(f"  events: {cutflow['events']}, "
          f"3-photon events: {cutflow['events_3g']}, "
          f"triples: {cutflow['triples']}")
    print(f"  reconstructed X peak: {result['x_peak_gev']:.0f} GeV "
          f"(true m_X = {TRIPHOTON_MX:.0f})")
    plane = result["mass_plane"]
    values = plane.values()
    import numpy as np
    i, j = np.unravel_index(values.argmax(), values.shape)
    print(f"  hottest (m3g, mgg) cell: "
          f"({plane.axes[0].centers[i]:.0f}, "
          f"{plane.axes[1].centers[j]:.0f}) GeV "
          f"(true ({TRIPHOTON_MX:.0f}, {TRIPHOTON_MA:.0f}))")


def run_scaleup_study():
    spec = TABLE2["RS-TriPhoton"]
    print(f"\nscale-up study: {spec.n_tasks} tasks, "
          f"{spec.input_bytes/1e9:.0f} GB input")
    print(f"{'cores':>6} {'runtime (s)':>12}")
    for cores in (120, 240, 600, 1200, 2400):
        env = build_environment(
            cores // 12,
            node=cal.campus_node(disk=spec.worker_disk,
                                 ram=spec.worker_ram),
            seed=5)
        workflow = build_workflow(spec, arity=8, seed=5)
        result = run_scheduler(env, workflow, "taskvine",
                               cal.TASKVINE_FUNCTIONS_CONFIG)
        print(f"{cores:>6} {result.makespan:>12.1f}")

    print("\nflat vs tree reduction (Fig 11, 20 datasets, "
          "15 workers):")
    for label, arity in (("flat", None), ("tree k=8", 8)):
        env = build_environment(
            15, node=cal.campus_node(disk=spec.worker_disk,
                                     ram=spec.worker_ram), seed=5)
        workflow = build_workflow(spec, arity=arity, n_datasets=20,
                                  seed=5)
        result = run_scheduler(env, workflow, "taskvine",
                               cal.TASKVINE_FUNCTIONS_CONFIG)
        peaks = env.trace.peak_cache()
        print(f"  {label:9s} runtime {result.makespan:7.1f} s, "
              f"peak worker cache "
              f"{max(peaks.values())/1e9:5.0f} GB, "
              f"worker failures {len(env.trace.failures())}")


def main():
    run_real_analysis()
    run_scaleup_study()


if __name__ == "__main__":
    main()
