"""DV3: the full Higgs -> jet-pair search on a synthetic dataset.

Generates a dataset with an injected H -> bb signal, runs the DV3
processor over it three ways -- iteratively, with standard tasks (a
fresh interpreter per task), and serverless (persistent library, fork
per invocation) -- checks they agree bin-for-bin, and reports the
reconstructed Higgs peak plus the real startup-cost difference between
the two distributed execution paradigms.

Run:  python examples/dv3_analysis.py
"""

import tempfile
import time

from repro.apps import DV3Processor
from repro.dag import DaskVine, build_analysis_graph
from repro.hep import HIGGS_MASS, NanoEventsFactory, write_dataset
from repro.hep.processor import iterative_runner


def main():
    workdir = tempfile.mkdtemp(prefix="repro-dv3-")
    print("generating DV3 dataset (6 files x 4000 events, 15% signal)")
    dataset = write_dataset(workdir, "dv3", n_files=6,
                            events_per_file=4_000, seed=7,
                            basket_size=1_000, signal_fraction=0.15)
    chunks = NanoEventsFactory.from_root(dataset, chunks_per_file=4,
                                         metadata={"dataset": "dv3"})
    processor = DV3Processor(btag_cut=0.7)

    print(f"{len(chunks)} chunks; running the reference "
          f"iterative analysis...")
    t0 = time.time()
    reference = iterative_runner(processor, chunks)
    t_iter = time.time() - t0

    graph = build_analysis_graph(processor, chunks, reduction_arity=4)
    manager = DaskVine(name="dv3", cores=4)

    print("running distributed with standard tasks "
          "(fresh interpreter per task)...")
    t0 = time.time()
    tasks_result = manager.compute(graph, task_mode="tasks",
                                   lib_resources={"slots": 4},
                                   import_modules=["numpy"])
    t_tasks = time.time() - t0

    print("running distributed serverless "
          "(persistent library, fork per call)...")
    t0 = time.time()
    serverless_result = manager.compute(
        graph, task_mode="function-calls",
        lib_resources={"slots": 4}, import_modules=["numpy"])
    t_serverless = time.time() - t0

    assert tasks_result["dijet_mass"] == reference["dijet_mass"]
    assert serverless_result["dijet_mass"] == reference["dijet_mass"]
    print("\nall three execution paths agree bin-for-bin")

    cutflow = reference["cutflow"]
    print(f"\ncutflow: {cutflow['events']} events, "
          f"{cutflow['jets_selected']} selected jets, "
          f"{cutflow['bb_candidates']} bb candidates")
    print(f"reconstructed Higgs peak: "
          f"{reference['higgs_peak_gev']:.1f} GeV "
          f"(true mass {HIGGS_MASS:.0f} GeV)")

    hist = reference["dijet_mass"]
    values = hist.values()
    print("\nb-tagged dijet mass (60-200 GeV):")
    edges = hist.axes[0].edges
    for i in range(20, 67, 3):
        block = values[i:i + 3].sum()
        bar = "#" * int(60 * block / max(values.max() * 3, 1))
        print(f"  [{edges[i]:5.0f}-{edges[i+3]:5.0f})  "
              f"{block:6.0f}  {bar}")

    print(f"\nwall time: iterative {t_iter:.1f}s | "
          f"standard tasks {t_tasks:.1f}s | "
          f"serverless {t_serverless:.1f}s")
    print("(standard tasks pay a fresh interpreter + imports per task;"
          " the library pays them once)")


if __name__ == "__main__":
    main()
