"""Quickstart: the paper's Fig 4 sample application, near-verbatim.

The paper's listing:

    from ndcctools.taskvine import DaskVine
    from coffea.nanoevents import NanoEventsFactory
    import hist.dask as hda

    dataset = get_dataset("SingleMu")
    events = NanoEventsFactory.from_root(
        dataset, permit_dask=True,
        uproot_options={"chunks_per_file": 5},
        metadata={"dataset": "SingleMu"}).events

    hist = (hda.Hist.new.Reg(100, 0, 200, name="met")
            .Double()
            .fill(events.MET.pt))

    manager = DaskVine(name="my_manager")
    result = manager.compute(hist, task_mode="function-calls",
                             lib_resources={"cores": 12, "slots": 12},
                             import_modules=["numpy"])

This script is the same program on this repository's stack: a lazy
histogram over lazy columns, lowered to a task graph (one fill per
chunk plus a reduction tree) and executed serverless -- persistent
library processes with a fork per invocation.

Run:  python examples/quickstart.py
"""

import tempfile

from repro.dag import DaskVine, LazyEvents, LazyHist
from repro.hep import NanoEventsFactory, write_dataset


def get_dataset(name: str, workdir: str):
    """Stand-in for the paper's dataset catalog lookup."""
    return write_dataset(workdir, "dv3", n_files=4,
                         events_per_file=5_000, seed=1,
                         basket_size=1_000)


def main():
    workdir = tempfile.mkdtemp(prefix="repro-quickstart-")
    dataset = get_dataset("SingleMu", workdir)
    print(f"dataset 'SingleMu': {len(dataset)} files under {workdir}")

    chunks = NanoEventsFactory.from_root(
        dataset,
        chunks_per_file=5,                      # uproot_options
        metadata={"dataset": "SingleMu"})
    events = LazyEvents(chunks)                 # permit_dask=True
    print(f"dataset split into {len(chunks)} lazy chunks")

    hist = (LazyHist.new.Reg(100, 0, 200, name="met")
            .Double()
            .fill(events.MET.pt))

    manager = DaskVine(name="my_manager", cores=4)
    result = manager.compute(
        hist,
        task_mode="function-calls",
        lib_resources={"cores": 4, "slots": 4},
        import_modules=["numpy"],
    )

    print(f"\nhistogram computed: {result.sum(flow=True):.0f} entries")
    values = result.values()
    print("MET histogram (100 bins, 0-200 GeV):")
    for lo in range(0, 100, 10):
        block = values[lo:lo + 10].sum()
        bar = "#" * int(60 * block / max(values.sum(), 1))
        print(f"  [{2*lo:5.0f}-{2*(lo+10):5.0f})  {block:8.0f}  {bar}")


if __name__ == "__main__":
    main()
