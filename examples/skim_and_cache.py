"""Skims and result caching: the facility-side levers for iteration.

Two more pieces of the near-interactive story:

1. **Skimming** (Section IV.A's "specialized data subsets"): derive a
   reduced dataset once -- keep only events passing a loose preselection
   and only the branches the analysis needs -- then iterate on the skim
   instead of the full sample.
2. **Lineage-keyed result caching** (TaskVine's cachename idea applied
   to results): re-running an unchanged analysis replays from cache;
   only genuinely new computation executes.

Run:  python examples/skim_and_cache.py
"""

import tempfile
import time

from repro.apps import DV3Processor
from repro.dag import DaskVine, GraphCache, build_analysis_graph
from repro.hep import NanoEventsFactory, skim_dataset, write_dataset


def preselection(events):
    """Loose skim: at least two central jets above 25 GeV."""
    jets = events.Jet
    good = (jets.pt > 25.0) & (abs(jets.eta) < 2.6)
    return jets[good].counts >= 2


def main():
    workdir = tempfile.mkdtemp(prefix="repro-skim-")
    print("generating the 'full' dataset...")
    full = write_dataset(workdir, "dv3", n_files=6,
                         events_per_file=4_000, seed=21,
                         basket_size=1_000, signal_fraction=0.12)
    full_chunks = NanoEventsFactory.from_root(full, chunks_per_file=4)

    print("skimming: >=2 central jets, pruned to analysis branches...")
    skim_paths, stats = skim_dataset(
        full_chunks, preselection, workdir + "/skim",
        branches=["Jet_pt", "Jet_eta", "Jet_phi", "Jet_mass",
                  "Jet_btag", "MET_pt", "MET_phi", "genWeight"])
    print(f"  kept {stats.events_out}/{stats.events_in} events "
          f"({stats.efficiency:.0%}), files "
          f"{stats.size_reduction:.0%} smaller")

    skim_chunks = NanoEventsFactory.from_root(skim_paths,
                                              chunks_per_file=2)
    manager = DaskVine(name="skim-iterate")
    cache = GraphCache()
    graph = build_analysis_graph(DV3Processor(), skim_chunks,
                                 reduction_arity=4)

    print("\nanalysing the skim, three runs with a shared cache:")
    for run in range(1, 4):
        start = time.time()
        result = manager.compute(graph, cache=cache)
        wall = time.time() - start
        print(f"  run {run}: peak {result['higgs_peak_gev']:6.1f} GeV, "
              f"wall {wall:6.3f} s, cache hits so far {cache.hits}")
    print("\nrun 1 computes; runs 2-3 replay every task from the "
          "lineage-keyed cache.")


if __name__ == "__main__":
    main()
