"""Fig 7: data transfer heatmap, Work Queue vs TaskVine peer transfers.

Paper: under Work Queue all traffic flows through the manager (node 0),
upwards of 40 GB to each worker; under TaskVine peer transfers the
maximum moved between any two nodes tops out around 4 GB.
"""

import numpy as np

from repro.bench import experiments as ex
from repro.bench.report import format_table
from repro.sim.viz import render_heatmap

from .conftest import run_once


def test_fig7_transfer_heatmap(benchmark, archive):
    data = run_once(benchmark, ex.fig7)
    wq = data["workqueue"]
    tv = data["taskvine"]
    pictures = "\n\n".join([
        render_heatmap(wq["matrix_gb"], max_cells=40,
                       title="Work Queue: bytes between node pairs "
                             "(node 0 = manager)"),
        render_heatmap(tv["matrix_gb"], max_cells=40,
                       title="TaskVine: bytes between node pairs"),
    ])
    text = format_table(
        ["Scheduler", "Mgr->worker max (GB)", "Mgr->worker mean (GB)",
         "Mgr total (GB)", "Peer max pair (GB)", "Peer total (GB)"],
        [("Work Queue",
          wq["manager_out_per_worker_gb"]["max"],
          wq["manager_out_per_worker_gb"]["mean"],
          wq["manager_total_gb"], wq["peer_max_pair_gb"],
          wq["peer_total_gb"]),
         ("TaskVine",
          tv["manager_out_per_worker_gb"]["max"],
          tv["manager_out_per_worker_gb"]["mean"],
          tv["manager_total_gb"], tv["peer_max_pair_gb"],
          tv["peer_total_gb"])],
        title="FIG 7: Transfer heatmap summary (DV3-Large, 200 workers)")
    archive("fig7_transfer_heatmap", text + "\n\n" + pictures)

    # Work Queue: manager-centric, tens of GB to each worker
    assert wq["manager_out_per_worker_gb"]["mean"] > 20.0
    assert wq["manager_out_per_worker_gb"]["max"] > 35.0
    assert wq["peer_total_gb"] < 0.05 * wq["manager_total_gb"]
    # TaskVine: manager nearly idle, peer pairs bounded at a few GB
    assert tv["manager_total_gb"] < 0.01 * wq["manager_total_gb"]
    assert 0.5 < tv["peer_max_pair_gb"] < 10.0
    assert tv["peer_total_gb"] > 100.0  # intermediates really moved
    # heatmap shapes: WQ has an empty worker-worker block
    wq_peer_block = wq["matrix_gb"][1:, 1:]
    assert wq_peer_block.max() < 1.0
    tv_manager_row = data["taskvine"]["matrix_gb"][0, 1:]
    assert tv_manager_row.max() < 1.0
