"""Fig 8: task execution time distribution, tasks vs function calls.

Paper: the majority of DV3-Large tasks execute in 1-10 s (with outliers
on both sides); serverless function calls shift the distribution left
because they shed interpreter startup and per-task imports.
"""

import numpy as np

from repro.bench import experiments as ex
from repro.bench.report import format_histogram, format_table

from .conftest import run_once


def test_fig8_task_time_distribution(benchmark, archive):
    data = run_once(benchmark, ex.fig8)
    bins = data["bins"]
    parts = []
    for label in ("standard_tasks", "function_calls"):
        parts.append(format_histogram(
            f"FIG 8: {label} execution times (s)",
            bins, data[label]["counts"]))
    summary = format_table(
        ["Mode", "Median (s)", "Fraction in 1-10 s"],
        [("Standard tasks", data["standard_tasks"]["median"],
          data["standard_tasks"]["frac_1_to_10s"]),
         ("Function calls", data["function_calls"]["median"],
          data["function_calls"]["frac_1_to_10s"])])
    archive("fig8_task_times", "\n\n".join(parts + [summary]))

    tasks = data["standard_tasks"]
    calls = data["function_calls"]
    # the bulk sits between 1 and 10 seconds in both modes
    assert tasks["frac_1_to_10s"] > 0.7
    assert calls["frac_1_to_10s"] > 0.7
    # function calls shed the ~2 s startup: median shifts left by
    # roughly the startup + import cost
    shift = tasks["median"] - calls["median"]
    assert 0.8 < shift < 4.0
    # the long-task tail exists in both modes, and the short end of
    # the distribution belongs to function calls
    assert (tasks["durations"] > 10).any()
    assert (calls["durations"] > 10).any()
    assert calls["durations"].min() < tasks["durations"].min()
