"""Fig 11: flat single-task reduction vs hierarchical tree reduction.

Paper (RS-TriPhoton, 20 datasets): with a single-task reduction per
dataset, worker caches spike to 700 GB+, workers fail and are preempted,
and the workflow is delayed.  Reducing as a tree keeps cache consumption
lower and more uniform and the run completes faster.
"""

from repro.bench import experiments as ex
from repro.bench.report import format_table

from .conftest import run_once


def test_fig11_reduction_shapes(benchmark, archive):
    data = run_once(benchmark, ex.fig11)
    flat = data["flat"]
    tree = data["tree"]
    text = format_table(
        ["Reduction", "Makespan (s)", "Completed", "Worker failures",
         "Peak cache max (GB)", "Peak cache mean (GB)"],
        [("flat (Fig 11a)", round(flat["makespan"]), flat["completed"],
          flat["worker_failures"], round(flat["peak_cache_gb_max"]),
          round(flat["peak_cache_gb_mean"])),
         ("tree (Fig 11b)", round(tree["makespan"]), tree["completed"],
          tree["worker_failures"], round(tree["peak_cache_gb_max"]),
          round(tree["peak_cache_gb_mean"]))],
        title="FIG 11: RS-TriPhoton reduction strategies "
              "(20 datasets, 15 workers, 700 GB disks)")
    archive("fig11_reduction", text)

    # flat reduction drives at least one worker into its disk limit
    assert flat["peak_cache_gb_max"] > 650.0
    assert flat["worker_failures"] >= 1
    # tree reduction keeps caches bounded and uniform, no failures
    assert tree["worker_failures"] == 0
    assert tree["peak_cache_gb_max"] < flat["peak_cache_gb_max"]
    spread_tree = (tree["peak_cache_gb_max"]
                   - tree["peak_cache_gb_mean"])
    spread_flat = (flat["peak_cache_gb_max"]
                   - flat["peak_cache_gb_mean"])
    assert spread_tree < spread_flat
    # and the workflow completes faster
    assert tree["completed"]
    assert tree["makespan"] < flat["makespan"]
