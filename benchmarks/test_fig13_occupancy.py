"""Fig 13: worker occupancy, Stack 3 vs Stack 4 at 20 and 200 workers.

Paper: Stack 3 keeps 20 workers busy but cannot dispatch fast enough to
exploit 200; Stack 4 is marginally faster at 20 workers and much more
effective at 200 because function invocations dispatch and collect
cheaply.
"""

from repro.bench import experiments as ex
from repro.bench.report import format_table
from repro.sim.viz import render_gantt

from .conftest import run_once


def test_fig13_worker_occupancy(benchmark, archive):
    rows = run_once(benchmark, ex.fig13)
    charts = []
    for stack in (3, 4):
        _, trace = ex.stack_run(stack, n_workers=200)
        charts.append(render_gantt(
            trace.gantt(), width=60, max_rows=25,
            title=f"Stack {stack} at 200 workers: per-worker busy "
                  f"intervals (25 sampled workers)"))
    text = format_table(
        ["Stack", "Workers", "Cores", "Makespan (s)",
         "Mean concurrency", "Core utilization", "Workers used"],
        [(r["stack"], r["workers"], r["cores"], round(r["makespan"]),
          round(r["mean_concurrency"]), f"{r['utilization']:.2f}",
          r["workers_used"]) for r in rows],
        title="FIG 13: DV3-Large execution across workers")
    archive("fig13_occupancy", text + "\n\n" + "\n\n".join(charts))

    by_key = {(r["stack"], r["workers"]): r for r in rows}
    s3_small = by_key[("Stack 3", 20)]
    s3_large = by_key[("Stack 3", 200)]
    s4_small = by_key[("Stack 4", 20)]
    s4_large = by_key[("Stack 4", 200)]

    # Stack 3 gains (almost) nothing from 10x more workers
    assert s3_large["makespan"] > 0.85 * s3_small["makespan"]
    # Stack 4 is marginally faster at 20 workers...
    assert s4_small["makespan"] < s3_small["makespan"]
    assert s4_small["makespan"] > 0.7 * s3_small["makespan"]
    # ...and much more effective at 200
    assert s4_large["makespan"] < 0.5 * s3_large["makespan"]
    assert (s4_large["mean_concurrency"]
            > 2 * s3_large["mean_concurrency"])
    # work spreads across (nearly) all workers in every configuration
    assert s4_large["workers_used"] >= 195
