"""Ablation benches for the design choices DESIGN.md calls out.

Not figures from the paper, but quantifications of its design claims:

* locality-aware placement vs random placement,
* peer-transfer concurrency throttling,
* reduction-arity sweep (how k affects cache pressure and runtime),
* staging from the XRootD wide-area federation vs the local datastore
  (Section III.A's justification for procuring local storage).
"""

from dataclasses import replace

from repro.bench import calibration as cal
from repro.bench.report import format_table
from repro.bench.runners import build_environment, run_scheduler
from repro.bench.workloads import build_workflow
from repro.hep.datasets import TABLE2
from repro.sim.storage import GB, MB, StorageProfile

from .conftest import run_once

#: WAN federation modelled as a storage tier (Section III.A): high
#: round-trip latency, modest per-stream WAN throughput.
XROOTD_PROFILE = StorageProfile(
    name="xrootd-wan", metadata_latency=0.160,
    per_stream_bw=25 * MB, aggregate_bw=2.5 * GB, capacity=1e18)


def _run_medium(locality=True, peer=True, transfer_slots=3,
                storage=None, arity=cal.REDUCTION_ARITY, seed=11):
    spec = TABLE2["DV3-Medium"]
    config = replace(cal.TASKVINE_FUNCTIONS_CONFIG,
                     locality_scheduling=locality,
                     peer_transfers=peer,
                     transfer_slots=transfer_slots)
    env = build_environment(50, node=cal.campus_node(), seed=seed,
                            storage_profile=storage
                            or __import__("repro.sim.storage",
                                          fromlist=["VAST_PROFILE"]
                                          ).VAST_PROFILE)
    workflow = build_workflow(spec, arity=arity, seed=seed)
    result = run_scheduler(env, workflow, "taskvine", config)
    peer_bytes = sum(t.nbytes for t in env.trace.transfers
                     if t.kind == "peer")
    return result, peer_bytes


def test_ablation_locality_placement(benchmark, archive):
    """Locality placement cuts peer traffic for the reduction phase."""

    def run():
        with_locality = _run_medium(locality=True)
        without = _run_medium(locality=False)
        return with_locality, without

    (res_loc, peer_loc), (res_rand, peer_rand) = run_once(benchmark, run)
    text = format_table(
        ["Placement", "Makespan (s)", "Peer traffic (GB)"],
        [("locality-aware", round(res_loc.makespan, 1),
          round(peer_loc / GB, 1)),
         ("random/round-robin", round(res_rand.makespan, 1),
          round(peer_rand / GB, 1))],
        title="ABLATION: locality-aware placement (DV3-Medium, "
              "50 workers)")
    archive("ablation_locality", text)
    assert res_loc.completed and res_rand.completed
    # scheduling tasks where data lives moves fewer bytes
    assert peer_loc < peer_rand
    assert res_loc.makespan <= res_rand.makespan * 1.1


def test_ablation_transfer_throttle(benchmark, archive):
    """Unbounded concurrent peer transfers create contention; one slot
    serialises staging.  The default (3) sits in between."""

    def run():
        return {slots: _run_medium(transfer_slots=slots)
                for slots in (1, 3, 16)}

    results = run_once(benchmark, run)
    text = format_table(
        ["Transfer slots", "Makespan (s)"],
        [(slots, round(res.makespan, 1))
         for slots, (res, _) in sorted(results.items())],
        title="ABLATION: per-worker transfer concurrency")
    archive("ablation_transfer_throttle", text)
    for res, _ in results.values():
        assert res.completed
    # a single slot serialises staging and cannot be fastest
    assert (results[3][0].makespan
            <= results[1][0].makespan * 1.05)


def test_ablation_reduction_arity(benchmark, archive):
    """Arity sweep: flat reductions concentrate storage, small arities
    deepen the tree; the paper's k=8 sits in the sweet spot."""
    spec = TABLE2["RS-TriPhoton"]

    def run():
        out = {}
        for arity in (None, 2, 4, 8, 16):
            env = build_environment(
                20, node=cal.campus_node(disk=spec.worker_disk,
                                         ram=spec.worker_ram), seed=11)
            workflow = build_workflow(spec, arity=arity, n_datasets=20,
                                      seed=11)
            result = run_scheduler(env, workflow, "taskvine",
                                   cal.TASKVINE_FUNCTIONS_CONFIG)
            peaks = env.trace.peak_cache()
            out[arity] = (result,
                          max(peaks.values()) if peaks else 0.0,
                          len(env.trace.failures()))
        return out

    results = run_once(benchmark, run)
    text = format_table(
        ["Arity", "Makespan (s)", "Peak cache (GB)", "Worker failures"],
        [("flat" if arity is None else arity,
          round(res.makespan, 1), round(peak / GB, 1), failures)
         for arity, (res, peak, failures) in results.items()],
        title="ABLATION: reduction arity (RS-TriPhoton, 20 datasets)")
    archive("ablation_reduction_arity", text)
    flat_res, flat_peak, flat_failures = results[None]
    for arity in (2, 4, 8, 16):
        res, peak, failures = results[arity]
        assert res.completed
        assert peak < flat_peak
    # the paper's k=8 beats the flat reduction outright
    assert results[8][0].makespan < flat_res.makespan


def test_ablation_replication(benchmark, archive):
    """min_replicas=2 trades peer bandwidth for resilience: under heavy
    preemption, recomputation drops."""
    spec = TABLE2["DV3-Medium"]

    def run():
        out = {}
        for min_replicas in (1, 2):
            config = replace(cal.TASKVINE_FUNCTIONS_CONFIG,
                             min_replicas=min_replicas)
            env = build_environment(50, node=cal.campus_node(),
                                    seed=11, preemption_rate=2e-4)
            workflow = build_workflow(spec,
                                      arity=cal.REDUCTION_ARITY,
                                      seed=11)
            result = run_scheduler(env, workflow, "taskvine", config)
            ok_proc_runs = len([r for r in env.trace.tasks
                                if r.category == "proc" and r.ok])
            replica_gb = sum(t.nbytes for t in env.trace.transfers
                             if t.kind == "replica") / GB
            out[min_replicas] = (result, ok_proc_runs, replica_gb,
                                 len(env.trace.failures()))
        return out

    results = run_once(benchmark, run)
    text = format_table(
        ["min_replicas", "Makespan (s)", "Proc executions",
         "Replica traffic (GB)", "Preemptions"],
        [(k, round(res.makespan, 1), runs, round(gb, 1), preempts)
         for k, (res, runs, gb, preempts) in sorted(results.items())],
        title="ABLATION: intermediate replication under preemption "
              "(DV3-Medium, 50 workers)")
    archive("ablation_replication", text)
    base_res, base_runs, base_gb, _ = results[1]
    repl_res, repl_runs, repl_gb, _ = results[2]
    assert base_res.completed and repl_res.completed
    assert base_gb == 0.0
    assert repl_gb > 0.0
    # replication never increases recomputation
    assert repl_runs <= base_runs


def test_ablation_xrootd_vs_local_datastore(benchmark, archive):
    """Section III.A: staging repeatedly over the WAN federation is
    impractical next to a local datastore."""

    def run():
        local = _run_medium()
        remote = _run_medium(storage=XROOTD_PROFILE)
        return local, remote

    (res_local, _), (res_remote, _) = run_once(benchmark, run)
    text = format_table(
        ["Data source", "Makespan (s)"],
        [("local datastore (VAST)", round(res_local.makespan, 1)),
         ("XRootD WAN federation", round(res_remote.makespan, 1))],
        title="ABLATION: dataset staging source (DV3-Medium)")
    archive("ablation_xrootd", text)
    assert res_local.completed and res_remote.completed
    # the WAN federation is several times slower end to end
    assert res_remote.makespan > 2.0 * res_local.makespan
