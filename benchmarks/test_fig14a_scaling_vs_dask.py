"""Fig 14a: TaskVine vs Dask.Distributed, DV3-Small/Medium, 60-300 cores.

Paper: both schedulers behave similarly at small scales, but TaskVine
completes in about half the time as the runs approach 300 cores.
"""

from repro.bench import experiments as ex
from repro.bench.report import format_table

from .conftest import run_once


def test_fig14a_scaling_vs_dask(benchmark, archive):
    rows = run_once(benchmark, ex.fig14a)
    text = format_table(
        ["Workload", "Cores", "TaskVine (s)", "Dask.Distributed (s)",
         "Dask/TV"],
        [(r["workload"], r["cores"], round(r["taskvine_s"], 1),
          round(r["dask_s"], 1) if r["dask_completed"] else "DNF",
          f"{r['ratio']:.2f}x" if r["dask_completed"] else "-")
         for r in rows],
        title="FIG 14a: TaskVine vs Dask.Distributed scaling")
    archive("fig14a_scaling_vs_dask", text)

    small = [r for r in rows if r["workload"] == "DV3-Small"]
    medium = [r for r in rows if r["workload"] == "DV3-Medium"]
    # similar at the smallest scale (within ~50 %)
    assert small[0]["ratio"] < 1.6
    # TaskVine pulls ahead approaching 300 cores (paper: ~2x)
    assert medium[-1]["dask_completed"]
    assert medium[-1]["ratio"] > 1.7
    # TaskVine itself keeps scaling across the sweep
    assert medium[-1]["taskvine_s"] < 0.5 * medium[0]["taskvine_s"]
    # TaskVine is never slower than Dask anywhere in the sweep
    for r in rows:
        if r["dask_completed"]:
            assert r["taskvine_s"] <= r["dask_s"] * 1.05, r
