"""Fig 12: first 300 seconds of each stack, running + waiting tasks.

Paper: Stack 1 sustains high concurrency initially (long tasks) but has
a long accumulation tail; Stack 3's dispatch cannot keep up with task
completion; Stack 4 dispatches function calls fast enough to drain the
whole workflow within ~272 s.
"""

import numpy as np

from repro.bench import experiments as ex
from repro.bench.report import format_series
from repro.sim.viz import render_timeline

from .conftest import run_once


def test_fig12_timeline(benchmark, archive):
    data = run_once(benchmark, ex.fig12)
    t = data["t"]
    parts = []
    for stack in (1, 2, 3, 4):
        d = data[f"stack{stack}"]
        parts.append(render_timeline(
            t, d["running"], width=60, height=8,
            title=f"FIG 12: Stack {stack} concurrent running tasks "
                  f"(first 300 s)"))
        parts.append(format_series(
            f"FIG 12: Stack {stack} waiting tasks",
            t.astype(int), d["waiting"].astype(int),
            x_label="t (s)", y_label="waiting"))
    archive("fig12_timeline", "\n\n".join(parts))

    s1 = data["stack1"]
    s3 = data["stack3"]
    s4 = data["stack4"]
    # Stack 4 drains its waiting queue within the 300 s window
    assert s4["waiting"][-1] == 0
    # Stacks 1-3 still have a large backlog at t=300
    assert s1["waiting"][-1] > 1000
    assert s3["waiting"][-1] > 1000
    # Stack 4 reaches higher sustained concurrency than Stack 3
    assert s4["running"][5:20].mean() > 1.5 * s3["running"][5:20].mean()
    # Stack 1's long tasks hold concurrency up within the window
    assert s1["running"][10:].mean() > s3["running"][10:].mean()
