"""Fig 10: import hoisting, 15 000 function calls, 16 x 32-core workers.

Paper: hoisting ``import numpy`` into the library preamble gives a
significant speedup for short fine-grained tasks that fades as task
runtime grows; TaskVine local storage slightly outperforms the VAST
shared filesystem because import metadata lookups stay on local disk.
"""

from repro.bench import experiments as ex
from repro.bench.report import format_table

from .conftest import run_once


def test_fig10_import_hoisting(benchmark, archive):
    rows = run_once(benchmark, ex.fig10)
    text = format_table(
        ["Complexity", "Task (s)", "local hoisted", "local unhoisted",
         "VAST hoisted", "VAST unhoisted", "Speedup local",
         "Speedup VAST"],
        [(r["complexity"], round(r["task_seconds"], 2),
          round(r["local-hoisted"], 1), round(r["local-unhoisted"], 1),
          round(r["vast-hoisted"], 1), round(r["vast-unhoisted"], 1),
          f"{r['speedup_local']:.2f}x", f"{r['speedup_vast']:.2f}x")
         for r in rows],
        title="FIG 10: Import hoisting (15k function calls, "
              "16 x 32-core workers)")
    archive("fig10_import_hoisting", text)

    finest = rows[0]
    coarsest = rows[-1]
    # complexity range maps to ~0.1 s .. ~35 s as in the paper
    assert finest["task_seconds"] < 0.2
    assert 30.0 < coarsest["task_seconds"] < 40.0
    # significant speedup for fine-grained tasks...
    assert finest["speedup_local"] > 1.5
    assert finest["speedup_vast"] > 1.5
    # ...fading for long tasks
    assert coarsest["speedup_local"] < 1.1
    assert coarsest["speedup_vast"] < 1.1
    # speedup decreases monotonically-ish across the sweep
    assert max(r["speedup_local"] for r in rows[-3:]) \
        < max(r["speedup_local"] for r in rows[:4])
    # local storage slightly outperforms the shared filesystem in the
    # unhoisted (per-call import) configurations
    for r in rows:
        assert r["local-unhoisted"] <= r["vast-unhoisted"] + 1e-6
