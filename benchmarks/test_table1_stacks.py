"""Table I: overall stack performance on DV3-Large.

Paper: Stack 1 (HDFS + Work Queue) 3545 s -> Stack 4 (TaskVine +
serverless) 272 s, a 13.03x speedup.  The reproduction must preserve the
ordering and the rough magnitudes: the storage swap alone is modest, the
scheduler swap is the big win, serverless multiplies it again.
"""

from repro.bench import experiments as ex
from repro.bench.report import format_table

from .conftest import run_once


def test_table1_stack_performance(benchmark, archive):
    rows = run_once(benchmark, ex.table1)
    text = format_table(
        ["Stack", "Change", "Runtime (s)", "Speedup",
         "Paper (s)", "Paper speedup"],
        [(r["stack"], r["change"], round(r["runtime_s"]),
          f"{r['speedup']:.2f}x", round(r["paper_runtime_s"]),
          f"{r['paper_speedup']:.2f}x") for r in rows],
        title="TABLE I: Overall Stack Performance (DV3-Large, "
              "200 x 12-core workers)")
    archive("table1_stacks", text)

    runtimes = {r["stack"]: r["runtime_s"] for r in rows}
    assert all(r["completed"] for r in rows)
    # ordering: each structural change helps (storage swap ~neutral)
    assert runtimes["Stack 2"] <= runtimes["Stack 1"] * 1.02
    assert runtimes["Stack 3"] < runtimes["Stack 2"] / 3.0
    assert runtimes["Stack 4"] < runtimes["Stack 3"] / 2.0
    # magnitudes: within ~35 % of the paper's numbers
    for r in rows:
        assert 0.65 < r["runtime_s"] / r["paper_runtime_s"] < 1.35, r
    # headline: >= 10x end-to-end speedup (paper: 13.03x)
    total = runtimes["Stack 1"] / runtimes["Stack 4"]
    assert total > 10.0
