"""Resilience matrix: DV3-Medium under a 20% preemption storm.

The paper's environment is an opportunistic campus cluster where
worker eviction is routine.  This benchmark runs the same workload and
the same seeded fault scenario against all three stacks:

* **TaskVine** completes with *bin-identical* histograms -- lineage
  recovery re-executes the lost tasks and the merged physics result is
  exactly the fault-free one.
* **Work Queue** also completes (results live on the manager), but
  every replacement staging funnels through the manager's NIC: the
  high-cost recovery path, on top of an already far longer makespan.
* **Dask.Distributed** loses its non-replicated intermediates with the
  evicted worker processes and crashes once the loss exceeds its
  stability tolerance -- the paper's "worker and application crashes".
"""

import dataclasses
import os

from repro.bench import calibration as cal
from repro.bench.runners import build_environment, run_scheduler
from repro.bench.workloads import build_workflow
from repro.chaos import compare, format_comparison, get_scenario, score
from repro.chaos.inject import estimate_horizon
from repro.hep.datasets import TABLE2

from .conftest import run_once

N_WORKERS = 60
SCALE = 0.25  # a quarter of DV3-Medium keeps the matrix fast


def _spec():
    spec = TABLE2["DV3-Medium"]
    return dataclasses.replace(
        spec, name=f"{spec.name}-x{SCALE:g}",
        n_tasks=max(1, int(spec.n_tasks * SCALE)),
        input_bytes=spec.input_bytes * SCALE)


def _one_stack(scheduler, scenario, out_dir):
    spec = _spec()
    node = (cal.dask_sharded_node()
            if scheduler == "dask.distributed" else None)

    def build():
        env = build_environment(N_WORKERS, node=node, seed=11,
                                preemption_rate=0.0)
        workflow = build_workflow(spec, arity=cal.REDUCTION_ARITY,
                                  seed=11)
        return env, workflow

    stem = os.path.join(out_dir,
                        f"chaos-{spec.name}-{scheduler}".lower())
    env, workflow = build()
    baseline_path = f"{stem}-baseline.jsonl"
    baseline = run_scheduler(env, workflow, scheduler,
                             txlog_path=baseline_path)
    horizon = (baseline.makespan if baseline.completed
               else estimate_horizon(workflow, env.total_cores))

    env, workflow = build()
    chaos_path = f"{stem}-chaos.jsonl"
    run_scheduler(env, workflow, scheduler, txlog_path=chaos_path,
                  chaos=scenario, chaos_horizon=horizon)
    return score(baseline_path), score(chaos_path)


def test_chaos_resilience_matrix(benchmark, archive, results_dir):
    scenario = get_scenario("preempt-storm-20")
    out_dir = os.path.join(results_dir, "chaos")
    os.makedirs(out_dir, exist_ok=True)

    def experiment():
        results = {}
        for scheduler in ("taskvine", "workqueue", "dask.distributed"):
            results[scheduler] = _one_stack(scheduler, scenario,
                                            out_dir)
        return results

    results = run_once(benchmark, experiment)
    tv_base, tv = results["taskvine"]
    wq_base, wq = results["workqueue"]
    dd_base, dd = results["dask.distributed"]

    text = "\n\n".join(
        format_comparison(base, [card],
                          title=f"{card.scheduler or name} under "
                                f"{scenario.name}")
        for name, (base, card) in results.items())
    archive("chaos_resilience_matrix", text)

    # TaskVine: recovers and the physics is exactly right
    assert tv.completed
    assert tv.reexecuted_tasks > 0
    assert compare(tv_base, tv)["bin_identical"]

    # Work Queue: survives, but recovery funnels through the manager
    # on top of a much slower run
    assert wq.completed
    assert compare(wq_base, wq)["bin_identical"]
    assert wq.manager_restage_bytes > wq_base.manager_restage_bytes
    assert wq.manager_restage_bytes > 100 * tv.manager_restage_bytes
    assert wq.makespan > 1.5 * tv.makespan

    # Dask.Distributed: the storm exceeds its tolerance and the run
    # crashes with the intermediates gone
    assert not dd.completed
    assert dd.crashes >= 1
    assert not compare(dd_base, dd)["bin_identical"]
    assert "crashed" in (dd.error or "")
