"""Fig 14b: DV3-Large and RS-TriPhoton scaling, 120 -> 2400 cores.

Paper: DV3-Large reaches peak performance around 1200 cores (no further
gains beyond), while RS-TriPhoton continues to see small, non-linear
gains up to 2400 cores.  Dask.Distributed cannot run these workflows at
this scale at all (crashes/hangs) -- checked via the feasibility
envelope.
"""

from repro.bench import calibration as cal
from repro.bench import experiments as ex
from repro.bench.report import format_table
from repro.bench.runners import build_environment
from repro.bench.workloads import build_workflow
from repro.daskdist.scheduler import DaskDistributedScheduler
from repro.hep.datasets import TABLE2

from .conftest import run_once


def test_fig14b_scaling(benchmark, archive):
    rows = run_once(benchmark, ex.fig14b)
    text = format_table(
        ["Workload", "Cores", "Runtime (s)"],
        [(r["workload"], r["cores"], round(r["runtime_s"], 1))
         for r in rows],
        title="FIG 14b: Scaling of the standard configurations")
    archive("fig14b_scaling", text)

    dv3 = [r for r in rows if r["workload"] == "DV3-Large"]
    tri = [r for r in rows if r["workload"] == "RS-TriPhoton"]
    assert all(r["completed"] for r in rows)

    # DV3-Large: strong scaling up to ~1200 cores ...
    assert dv3[0]["runtime_s"] > 3 * dv3[3]["runtime_s"]
    # ... then a plateau: 2400 cores buy < 15 % over 1200
    assert dv3[4]["runtime_s"] > 0.85 * dv3[3]["runtime_s"]

    # RS-TriPhoton keeps improving, but the last doubling is sub-linear
    assert tri[3]["runtime_s"] < tri[2]["runtime_s"]
    gain = tri[3]["runtime_s"] / tri[4]["runtime_s"]
    assert gain < 1.5  # far from the 2x a linear doubling would give


def test_fig14b_dask_infeasible_at_scale(benchmark):
    """The paper's note: Dask.Distributed consistently fails on these
    workflows at 120-2400 cores."""

    def run():
        spec = TABLE2["DV3-Large"]
        env = build_environment(120, node=cal.dask_sharded_node(),
                                seed=11)
        workflow = build_workflow(spec, arity=cal.REDUCTION_ARITY,
                                  seed=11)
        scheduler = DaskDistributedScheduler(
            env.sim, env.cluster, env.storage, workflow,
            trace=env.trace)
        return scheduler.feasible(), scheduler.run()

    reason, result = run_once(benchmark, run)
    assert reason is not None
    assert not result.completed
    assert result.makespan == float("inf")
