"""Facility fairness: 8 tenants sharing one 64-node manager.

Two heavy analysis groups submit ~600-task DAGs at the Monday-morning
burst; six small analysts arrive over seeded Poisson gaps while the
heavy backlog is still draining.  The benchmark makes the multi-tenant
case for the facility:

* **FIFO head-of-line blocking**: the small tenants' p95 turnaround
  sits behind the heavy backlog.  **Weighted fair share** rescues it
  without hurting overall completion.
* **Fairness**: Jain's index over per-tenant mean slowdown (facility
  turnaround / isolated run of the same DAG) stays >= 0.9 under WFS.
* **Shared cache**: identical chunks stage once, not once per tenant
  -- total staged bytes undercut the sum of isolated managers.
* **Physics unchanged**: each tenant's pseudo-histogram is
  bin-identical to its isolated baseline, and the whole facility run
  is byte-stable across two same-seed executions.
"""

import dataclasses
import os

import numpy as np

from repro.bench.runners import build_environment, run_scheduler
from repro.bench.workloads import Arrival, build_workflow, \
    poisson_schedule
from repro.chaos.scorecard import pseudo_histogram, score
from repro.facility import Facility, Tenant, fairness_summary, \
    render_facility_report
from repro.hep.datasets import TABLE2
from repro.obs import events as ev
from repro.obs.txlog import read_records
from repro.sim.cluster import NodeSpec

from .conftest import run_once

N_WORKERS = 64
NODE = NodeSpec(cores=4)   # 256 slots: real contention for the burst
SEED = 11
HEAVY = ("h0", "h1")
SMALL = ("s0", "s1", "s2", "s3", "s4", "s5")


def _spec(name, scale):
    spec = TABLE2[name]
    return dataclasses.replace(
        spec, name=f"{spec.name}-x{scale:g}",
        n_tasks=max(1, int(spec.n_tasks * scale)),
        input_bytes=spec.input_bytes * scale)


HEAVY_SPEC = _spec("DV3-Medium", 0.22)   # ~600 tasks each
SMALL_SPEC = _spec("DV3-Small", 0.10)    # ~40 tasks each


def _env():
    return build_environment(N_WORKERS, node=NODE, seed=SEED,
                             preemption_rate=0.0)


def _workflows():
    heavy = build_workflow(HEAVY_SPEC, arity=8, seed=SEED)
    small = build_workflow(SMALL_SPEC, arity=8, seed=SEED)
    return heavy, small


def _arrivals():
    heavy, small = _workflows()
    # the second heavy group starts while the first is mid-flight --
    # late enough that most shared chunks are already resident
    arrivals = [Arrival(t=12.0 * i, tenant=name, workflow=heavy,
                        tag=HEAVY_SPEC.name)
                for i, name in enumerate(HEAVY)]
    for t, tenant in poisson_schedule(SMALL, rate=0.2, per_tenant=1,
                                      seed=SEED):
        arrivals.append(Arrival(t=t, tenant=tenant, workflow=small,
                                tag=SMALL_SPEC.name))
    return arrivals


def _facility_run(discipline, txlog_path=None):
    fac = Facility(_env(), [Tenant(n) for n in HEAVY + SMALL],
                   discipline=discipline, txlog_path=txlog_path)
    return fac.run(_arrivals())


def _staged_bytes(path):
    return sum(r.get("nbytes", 0.0) for r in read_records(path)
               if r["type"] == ev.STAGE_IN and not r.get("cached"))


def _tenant_histograms(path):
    """Facility pseudo-histograms, keyed by submission id, over task
    ids stripped of their ``<tenant>.<seq>/`` namespace prefix."""
    done = {}
    for r in read_records(path):
        if r["type"] == ev.TASK_DONE:
            sid, _, plain = r["task"].partition("/")
            done.setdefault(sid, set()).add(plain)
    return {sid: sum(pseudo_histogram(t) for t in sorted(tasks))
            for sid, tasks in done.items()}


def test_facility_fairness(benchmark, archive, results_dir):
    out = os.path.join(results_dir, "facility")
    os.makedirs(out, exist_ok=True)
    heavy, small = _workflows()

    def experiment():
        # isolated baselines: one idle-cluster run per workload class
        iso = {}
        for tag, wf in ((HEAVY_SPEC.name, heavy),
                        (SMALL_SPEC.name, small)):
            path = os.path.join(out, f"iso-{tag}.jsonl".lower())
            result = run_scheduler(_env(), wf, "taskvine",
                                   txlog_path=path)
            assert result.completed
            iso[tag] = {"makespan": result.makespan, "path": path}
        fifo = _facility_run("fifo")
        wfs_path = os.path.join(out, "facility-wfs.jsonl")
        wfs = _facility_run("wfs", txlog_path=wfs_path)
        rerun_path = os.path.join(out, "facility-wfs-rerun.jsonl")
        _facility_run("wfs", txlog_path=rerun_path)
        return iso, fifo, wfs, wfs_path, rerun_path

    iso, fifo, wfs, wfs_path, rerun_path = run_once(benchmark,
                                                    experiment)
    baselines = {tag: d["makespan"] for tag, d in iso.items()}
    assert fifo.completed and wfs.completed

    summary = fairness_summary(wfs, baselines)
    text = "\n\n".join(
        render_facility_report(r, baselines) for r in (fifo, wfs))
    archive("facility_fairness", text)

    # -- fairness: WFS spreads slowdown evenly ---------------------------
    assert summary["jain_index"] >= 0.9

    # -- small tenants: WFS beats FIFO's head-of-line blocking -----------
    def small_p95(result):
        turns = []
        for name in SMALL:
            turns.extend(result.tenant_stats[name].turnarounds)
        return np.percentile(turns, 95)

    assert small_p95(wfs) < small_p95(fifo)

    # -- shared cache: staged bytes undercut isolated managers -----------
    isolated_total = (len(HEAVY) * _staged_bytes(
        iso[HEAVY_SPEC.name]["path"])
        + len(SMALL) * _staged_bytes(iso[SMALL_SPEC.name]["path"]))
    facility_staged = _staged_bytes(wfs_path)
    assert facility_staged < 0.95 * isolated_total
    # most of the late heavy group's input is served from its peer
    assert (wfs.peer_cache_bytes_total()
            > 0.5 * HEAVY_SPEC.input_bytes)

    # -- physics: per-tenant histograms bin-identical to isolation -------
    iso_hist = {tag: score(d["path"]).histogram
                for tag, d in iso.items()}
    facility_hist = _tenant_histograms(wfs_path)
    assert len(facility_hist) == len(HEAVY) + len(SMALL)
    for sid, hist in facility_hist.items():
        tenant = sid.split(".", 1)[0]
        tag = (HEAVY_SPEC.name if tenant in HEAVY
               else SMALL_SPEC.name)
        assert np.array_equal(hist, iso_hist[tag]), sid

    # -- determinism: same seed, same bytes ------------------------------
    with open(wfs_path, "rb") as a, open(rerun_path, "rb") as b:
        assert a.read() == b.read()
