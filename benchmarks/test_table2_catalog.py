"""Table II: the application/workload catalog.

Regenerates the configuration table and checks the built workflows
match the paper's task counts and data volumes.
"""

from repro.bench import experiments as ex
from repro.bench.report import format_table

from .conftest import run_once


def test_table2_workload_catalog(benchmark, archive):
    rows = run_once(benchmark, ex.table2)
    text = format_table(
        ["Workload", "App", "Input (GB)", "Tasks (paper)",
         "Tasks (built)", "Initially ready", "Intermediate (GB)",
         "Mean task (s)"],
        [(r["name"], r["application"], round(r["input_gb"]),
          r["tasks_spec"], r["tasks_built"], r["initial_ready"],
          round(r["intermediate_gb"]), r["mean_task_s"])
         for r in rows],
        title="TABLE II: Application configurations")
    archive("table2_catalog", text)

    by_name = {r["name"]: r for r in rows}
    # paper sizes
    assert by_name["DV3-Large"]["input_gb"] == 1200
    assert by_name["RS-TriPhoton"]["input_gb"] == 500
    # built task counts within 5 % of the paper's
    for r in rows:
        assert abs(r["tasks_built"] - r["tasks_spec"]) \
            <= 0.05 * r["tasks_spec"], r
    # DV3-Huge: ~10k initially executable tasks (Fig 15 text)
    assert 8_000 <= by_name["DV3-Huge"]["initial_ready"] <= 12_000
    # the other configurations are embarrassingly parallel up front
    assert (by_name["DV3-Large"]["initial_ready"]
            > 0.8 * by_name["DV3-Large"]["tasks_built"])
