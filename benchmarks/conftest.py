"""Shared benchmark helpers.

Every benchmark runs its experiment exactly once (``pedantic``), prints
the paper-style report, and archives it under ``results/`` so that
EXPERIMENTS.md can quote the measured numbers.
"""

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), os.pardir,
                           "results")


@pytest.fixture(scope="session")
def results_dir():
    path = os.path.abspath(RESULTS_DIR)
    os.makedirs(path, exist_ok=True)
    return path


@pytest.fixture
def archive(results_dir):
    """Callable: archive(name, text) -> prints and saves the report."""

    def _archive(name: str, text: str) -> None:
        print()
        print(text)
        with open(os.path.join(results_dir, f"{name}.txt"), "w") as fh:
            fh.write(text + "\n")

    return _archive


def run_once(benchmark, func):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, rounds=1, iterations=1)
