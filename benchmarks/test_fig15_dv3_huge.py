"""Fig 15: DV3-Huge -- 185 k tasks on 600 x 12-core workers (7200 cores).

Paper: the workflow starts with 10,000 executable tasks and TaskVine
maintains high concurrency for the duration of the execution until the
final reduction of the graph.
"""

import numpy as np

from repro.bench import experiments as ex
from repro.bench.report import format_series, format_table
from repro.sim.viz import render_timeline

from .conftest import run_once


def test_fig15_dv3_huge(benchmark, archive):
    data = run_once(benchmark, ex.fig15)
    # thin the series for the archived report
    stride = max(1, len(data["t"]) // 40)
    series = format_series(
        "FIG 15: DV3-Huge concurrency (600 x 12-core workers)",
        data["t"][::stride].astype(int),
        data["running"][::stride].astype(int),
        x_label="t (s)", y_label="running tasks")
    summary = format_table(
        ["Tasks", "Initially ready", "Cores", "Makespan (s)",
         "Peak concurrency", "Task failures"],
        [(data["tasks"], data["initial_ready"], data["cores"],
          round(data["makespan"]), int(data["peak_concurrency"]),
          data["task_failures"])])
    chart = render_timeline(
        data["t"], data["running"], width=70, height=10,
        title="FIG 15: DV3-Huge running tasks over time")
    archive("fig15_dv3_huge",
            chart + "\n\n" + series + "\n\n" + summary)

    assert data["completed"]
    assert data["cores"] == 7200
    # ~185k tasks with ~10k initially executable
    assert 170_000 < data["tasks"] < 200_000
    assert 8_000 <= data["initial_ready"] <= 12_000
    # sustained concurrency: the middle 60 % of the run stays above
    # half the peak (high concurrency until the reduction phase)
    running = data["running"]
    n = len(running)
    middle = running[int(0.2 * n):int(0.8 * n)]
    assert middle.min() > 0.5 * data["peak_concurrency"]
    # concurrency collapses only at the end (the reduction)
    assert running[-1] <= middle.min()
